package proc

import (
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"optiflow/internal/algo/ref"
	"optiflow/internal/checkpoint"
	"optiflow/internal/cluster"
	"optiflow/internal/iterate"
	"optiflow/internal/recovery"
	"optiflow/internal/supervise"

	"optiflow/internal/cluster/proc/netfault"
)

// netScript is a failure.Injector that delivers scripted NETWORK
// strikes at superstep boundaries and never reports a failure — the
// suspicion ladder alone decides whether a struck worker survives.
type netScript struct {
	strikes map[int]func()
	fired   map[int]bool
}

func scriptNet(strikes map[int]func()) *netScript {
	return &netScript{strikes: strikes, fired: make(map[int]bool)}
}

func (n *netScript) FailuresAt(superstep, _ int, _ []int) []int {
	if f, ok := n.strikes[superstep]; ok && !n.fired[superstep] {
		n.fired[superstep] = true
		f()
	}
	return nil
}

// TestHandshakeDeadlineFromConfig pins the handshake read deadline to
// the configured value instead of the formerly hardcoded 10s: a silent
// dial is cut quickly, while a slow-but-within-deadline Hello is still
// read and answered.
func TestHandshakeDeadlineFromConfig(t *testing.T) {
	co := startTestCluster(t, 1, 1, func(c *Config) {
		c.HandshakeTimeout = 500 * time.Millisecond
	})

	// A connection that never sends its Hello must be cut at roughly the
	// configured deadline — far below the old hardcoded 10 seconds.
	nc, err := net.Dial("tcp", co.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	start := time.Now()
	nc.SetReadDeadline(time.Now().Add(8 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("silent connection was answered without a Hello")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("silent handshake lingered %v; deadline is not derived from config", elapsed)
	}

	// A Hello that arrives slowly but within the deadline is still read:
	// the rejection proves the coordinator waited for it.
	nc2, err := net.Dial("tcp", co.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc2.Close()
	time.Sleep(200 * time.Millisecond)
	hello := Hello{Proto: ProtoVersion, Worker: 0, Token: "wrong-token", Conn: ConnCtrl}
	if err := writeFrame(nc2, hello); err != nil {
		t.Fatalf("writing slow hello: %v", err)
	}
	nc2.SetReadDeadline(time.Now().Add(2 * time.Second))
	m, err := readFrame(nc2)
	if err != nil {
		t.Fatalf("reading handshake response: %v", err)
	}
	if e, ok := m.(ErrResp); !ok || !strings.Contains(e.Msg, "handshake rejected") {
		t.Fatalf("slow bad-token hello answered with %#v, want handshake rejection", m)
	}
}

// TestReconnectResumesWithZeroRecoveryRounds severs a worker's TCP
// connections mid-job (the process stays alive) and demands the worker
// rejoin within the suspicion grace with NO recovery rounds: the
// retrying RPC layer plus the worker's redial absorb the fault
// entirely. recovery.None makes the assertion fail-closed — any
// recovery attempt would error the run.
func TestReconnectResumesWithZeroRecoveryRounds(t *testing.T) {
	nw := netfault.New(7)
	co := startTestCluster(t, 3, 6, func(c *Config) {
		c.NetFault = nw
		c.CallTimeout = 500 * time.Millisecond
		c.SuspicionGrace = 10 * time.Second
		c.ReconnectGrace = 20 * time.Second
		c.LivenessWindow = 10 * time.Second
		c.StragglerMin = 20 * time.Second
	})
	g := ccTestGraph()
	want := ref.ConnectedComponents(g)
	job, err := NewJob(co, Spec{Name: "cc-reconnect", Kind: KindCC, Graph: g})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	script := scriptNet(map[int]func(){1: func() { nw.Sever(1) }})
	loop := &iterate.Loop{
		Name:     "cc-reconnect",
		Step:     job.Step,
		Done:     iterate.DeltaDone(job.WorksetLen),
		Job:      job,
		Policy:   recovery.None{},
		Cluster:  co,
		Injector: DetectFailures(co, script),
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failures != 0 {
		t.Fatalf("severed connection caused %d recovery round(s), want 0", res.Failures)
	}
	st := co.NetStats()
	if st.Reconnects < 1 {
		t.Fatalf("NetStats.Reconnects = %d, want >= 1 after a sever", st.Reconnects)
	}
	if st.Condemned != 0 {
		t.Fatalf("NetStats.Condemned = %d, want 0 — the blip was within grace", st.Condemned)
	}
	got, err := job.Components()
	if err != nil {
		t.Fatalf("Components: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("components diverged after reconnect:\n got %v\nwant %v", got, want)
	}
}

// TestIdempotentRetryNoDuplicateSideEffects drops exactly one RPC
// response on the wire: the coordinator retries with the same token and
// the worker answers from its idempotence cache instead of re-applying
// the request. The worker's own counters are the witness.
func TestIdempotentRetryNoDuplicateSideEffects(t *testing.T) {
	nw := netfault.New(3)
	co := startTestCluster(t, 2, 2, func(c *Config) {
		c.NetFault = nw
		c.CallTimeout = 300 * time.Millisecond
		c.SuspicionGrace = 5 * time.Second
		// Keep the beat stream quiet so the scripted drop hits the RPC
		// response, not a heartbeat frame.
		c.Heartbeat = 5 * time.Second
		c.LivenessWindow = 30 * time.Second
	})

	if _, err := co.call(1, PingReq{}); err != nil {
		t.Fatalf("baseline ping: %v", err)
	}
	nw.DropNext(1, netfault.Inbound, 1)
	if _, err := co.call(1, PingReq{}); err != nil {
		t.Fatalf("ping with dropped response: %v", err)
	}

	resp, err := co.call(1, StatsReq{})
	if err != nil {
		t.Fatalf("StatsReq: %v", err)
	}
	ws := resp.(WorkerStats)
	if ws.Replayed < 1 {
		t.Fatalf("WorkerStats.Replayed = %d, want >= 1 — the retry was re-applied, not replayed", ws.Replayed)
	}
	if ws.Handled != 2 {
		t.Fatalf("WorkerStats.Handled = %d, want exactly 2 — a duplicate side effect landed", ws.Handled)
	}
	st := co.NetStats()
	if st.RPCRetries < 1 {
		t.Fatalf("NetStats.RPCRetries = %d, want >= 1", st.RPCRetries)
	}
	if st.Condemned != 0 {
		t.Fatalf("NetStats.Condemned = %d, want 0", st.Condemned)
	}
}

// TestHealAfterCondemnFencesZombie partitions a worker long enough for
// the ladder to condemn it, lets recovery replace it WITHOUT killing
// the process (LeaveZombies), then heals the partition: the zombie's
// redial must be fenced — its handshake rejected — so it can never
// write into the recovered job.
func TestHealAfterCondemnFencesZombie(t *testing.T) {
	nw := netfault.New(11)
	co := startTestCluster(t, 3, 6, func(c *Config) {
		c.NetFault = nw
		c.LeaveZombies = true
		c.CallTimeout = 250 * time.Millisecond
		c.SuspicionGrace = 750 * time.Millisecond
		c.ReconnectGrace = 30 * time.Second
		c.StragglerMin = 10 * time.Second
		c.LivenessWindow = 2 * time.Second
	})
	g := ccTestGraph()
	want := ref.ConnectedComponents(g)
	job, err := NewJob(co, Spec{Name: "cc-zombie", Kind: KindCC, Graph: g})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	script := scriptNet(map[int]func(){1: func() { nw.Partition(1) }})
	loop := &iterate.Loop{
		Name:     "cc-zombie",
		Step:     job.Step,
		Done:     iterate.DeltaDone(job.WorksetLen),
		Job:      job,
		Policy:   recovery.Optimistic{},
		Cluster:  co,
		Injector: DetectFailures(co, script),
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failures < 1 {
		t.Fatalf("partition never became a failure (res.Failures = %d)", res.Failures)
	}
	if st := co.NetStats(); st.Condemned < 1 {
		t.Fatalf("NetStats.Condemned = %d, want >= 1", st.Condemned)
	}
	got, err := job.Components()
	if err != nil {
		t.Fatalf("Components: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("components diverged after recovery:\n got %v\nwant %v", got, want)
	}

	// Heal the partition: the zombie process is still alive and
	// redialing; its handshake must now be rejected at the fence.
	nw.HealAll()
	deadline := time.Now().Add(15 * time.Second)
	for co.NetStats().Fenced < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("healed zombie was never fenced (NetStats: %+v)", co.NetStats())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStragglerIsCondemnedAndRecovered partitions only the inbound half
// of a worker's link: the worker receives its step request and computes
// happily, but every response vanishes. The per-superstep straggler
// watchdog — not the generic RPC retry budget — must condemn it, and
// the job must recover and converge.
func TestStragglerIsCondemnedAndRecovered(t *testing.T) {
	nw := netfault.New(5)
	co := startTestCluster(t, 3, 6, func(c *Config) {
		c.NetFault = nw
		c.CallTimeout = 2 * time.Second
		c.SuspicionGrace = 10 * time.Second
		c.StragglerFactor = 2
		c.StragglerMin = 300 * time.Millisecond
		c.LivenessWindow = 10 * time.Second
	})
	g := ccTestGraph()
	want := ref.ConnectedComponents(g)
	job, err := NewJob(co, Spec{Name: "cc-straggler", Kind: KindCC, Graph: g})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	script := scriptNet(map[int]func(){1: func() { nw.PartitionInbound(1) }})
	loop := &iterate.Loop{
		Name:     "cc-straggler",
		Step:     job.Step,
		Done:     iterate.DeltaDone(job.WorksetLen),
		Job:      job,
		Policy:   recovery.Optimistic{},
		Cluster:  co,
		Injector: DetectFailures(co, script),
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failures < 1 {
		t.Fatalf("straggler never became a failure (res.Failures = %d)", res.Failures)
	}
	var straggled bool
	for _, e := range co.Events() {
		if e.Kind == cluster.EventCondemn && strings.Contains(e.Detail, "straggling") {
			straggled = true
		}
	}
	if !straggled {
		t.Fatalf("no condemn event blames straggling; events: %v", co.Events())
	}
	if st := co.NetStats(); st.Condemned < 1 {
		t.Fatalf("NetStats.Condemned = %d, want >= 1", st.Condemned)
	}
	got, err := job.Components()
	if err != nil {
		t.Fatalf("Components: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("components diverged after straggler recovery:\n got %v\nwant %v", got, want)
	}
}

// blipPolicies is the transient-blip matrix: every policy, including
// "none" — a blip inside the grace window must cost zero recovery
// rounds, so even the policy that cannot recover completes.
var blipPolicies = []struct {
	name   string
	policy func() recovery.Policy
}{
	{"none", func() recovery.Policy { return recovery.None{} }},
	{"optimistic", func() recovery.Policy { return recovery.Optimistic{} }},
	{"checkpoint", func() recovery.Policy { return recovery.NewCheckpoint(1, checkpoint.NewMemoryStore()) }},
	{"restart", func() recovery.Policy { return recovery.Restart{} }},
}

// blipConfig tunes a cluster so scripted delay/drop/sever blips stay
// comfortably inside every grace window.
func blipConfig(nw *netfault.Network) func(*Config) {
	return func(c *Config) {
		c.NetFault = nw
		c.CallTimeout = 500 * time.Millisecond
		c.SuspicionGrace = 8 * time.Second
		c.ReconnectGrace = 20 * time.Second
		c.LivenessWindow = 8 * time.Second
		c.StragglerMin = 20 * time.Second
	}
}

// blipSchedule scripts one of each transient fault kind: a sever
// (reconnect path), a dropped request frame (idempotent retry path) and
// a delay burst under the call timeout (pure latency).
func blipSchedule(nw *netfault.Network) *netScript {
	return scriptNet(map[int]func(){
		1: func() { nw.Sever(1) },
		2: func() { nw.DropNext(0, netfault.Outbound, 1) },
		3: func() {
			f := netfault.Faults{DelayP: 1, Delay: 100 * time.Millisecond}
			nw.SetFaults(2, netfault.Inbound, f)
			nw.SetFaults(2, netfault.Outbound, f)
		},
		4: func() {
			nw.SetFaults(2, netfault.Inbound, netfault.Faults{})
			nw.SetFaults(2, netfault.Outbound, netfault.Faults{})
		},
	})
}

// TestNetChaosTransientBlipsCC: scripted sever/drop/delay blips inside
// the grace window, Connected Components under every policy, zero
// recovery rounds.
func TestNetChaosTransientBlipsCC(t *testing.T) {
	g := ccTestGraph()
	want := ref.ConnectedComponents(g)
	for _, tc := range blipPolicies {
		t.Run(tc.name, func(t *testing.T) {
			nw := netfault.New(17)
			co := startTestCluster(t, 3, 6, blipConfig(nw))
			job, err := NewJob(co, Spec{Name: "cc-blip-" + tc.name, Kind: KindCC, Graph: g})
			if err != nil {
				t.Fatalf("NewJob: %v", err)
			}
			loop := &iterate.Loop{
				Name:     "cc-blip-" + tc.name,
				Step:     job.Step,
				Done:     iterate.DeltaDone(job.WorksetLen),
				Job:      job,
				Policy:   tc.policy(),
				Cluster:  co,
				Injector: DetectFailures(co, blipSchedule(nw)),
			}
			res, err := loop.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Failures != 0 {
				t.Fatalf("transient blips caused %d recovery round(s), want 0", res.Failures)
			}
			if st := co.NetStats(); st.Condemned != 0 {
				t.Fatalf("NetStats.Condemned = %d, want 0", st.Condemned)
			}
			got, err := job.Components()
			if err != nil {
				t.Fatalf("Components: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("components diverged:\n got %v\nwant %v", got, want)
			}
		})
	}
}

// TestNetChaosTransientBlipsPageRank is the bulk-iteration counterpart
// with float convergence on the line.
func TestNetChaosTransientBlipsPageRank(t *testing.T) {
	g := prTestGraph()
	want, _ := ref.PageRank(g, ref.PageRankOptions{})
	for _, tc := range blipPolicies {
		t.Run(tc.name, func(t *testing.T) {
			nw := netfault.New(19)
			co := startTestCluster(t, 3, 6, blipConfig(nw))
			job, err := NewJob(co, Spec{Name: "pr-blip-" + tc.name, Kind: KindPageRank, Graph: g})
			if err != nil {
				t.Fatalf("NewJob: %v", err)
			}
			loop := &iterate.Loop{
				Name: "pr-blip-" + tc.name,
				Step: job.Step,
				Done: iterate.BulkDone(200, func(int) bool {
					return job.LastL1() < 1e-11
				}),
				Job:      job,
				Policy:   tc.policy(),
				Cluster:  co,
				Injector: DetectFailures(co, blipSchedule(nw)),
			}
			res, err := loop.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Failures != 0 {
				t.Fatalf("transient blips caused %d recovery round(s), want 0", res.Failures)
			}
			got, err := job.Ranks()
			if err != nil {
				t.Fatalf("Ranks: %v", err)
			}
			for v, w := range want {
				d := got[v] - w
				if d < 0 {
					d = -d
				}
				if d > 1e-6 {
					t.Errorf("rank[%d] = %.9f, want %.9f", v, got[v], w)
				}
			}
		})
	}
}

// TestNetChaosSoak is the network-fault soak gate: crash chaos (real
// SIGKILLs) plus network chaos (severs, delay bursts, partitions) under
// each recovering policy, asserting at least one strike of each surface
// landed and the job still converged to ground truth.
func TestNetChaosSoak(t *testing.T) {
	g := soakGraph()
	want := ref.ConnectedComponents(g)
	for _, tc := range recoveryMatrix {
		t.Run(tc.name, func(t *testing.T) {
			nw := netfault.New(23)
			co := startTestCluster(t, 4, 8, func(c *Config) {
				c.NetFault = nw
				c.CallTimeout = 300 * time.Millisecond
				c.SuspicionGrace = 1 * time.Second
				c.ReconnectGrace = 6 * time.Second
				c.LivenessWindow = 5 * time.Second
				c.StragglerMin = 5 * time.Second
			})
			job, err := NewJob(co, Spec{Name: "cc-netsoak-" + tc.name, Kind: KindCC, Graph: g})
			if err != nil {
				t.Fatalf("NewJob: %v", err)
			}
			chaos := NewChaos(co, 1).
				WithProbabilities(0.5, 0.05, 0.1).
				WithMaxFailures(2).
				WithNetwork(nw, 1.0, 3)
			inj := DetectFailures(co, chaos)
			sup := supervise.New(co, tc.policy(), inj, supervise.Config{Spares: -1})
			loop := &iterate.Loop{
				Name:       "cc-netsoak-" + tc.name,
				Step:       job.Step,
				Done:       iterate.DeltaDone(job.WorksetLen),
				Job:        job,
				Policy:     tc.policy(),
				Cluster:    co,
				Injector:   inj,
				Supervisor: sup,
				MaxTicks:   500,
			}
			res, err := loop.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if chaos.Killed() < 1 {
				t.Fatalf("soak delivered %d real SIGKILLs, want >= 1", chaos.Killed())
			}
			net := chaos.NetDelivered()
			if net.Severed+net.Delayed+net.Partitioned < 1 {
				t.Fatalf("soak delivered no network strikes (%+v)", net)
			}
			got, err := job.Components()
			if err != nil {
				t.Fatalf("Components: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("soak components diverged from ground truth:\n got %v\nwant %v", got, want)
			}
			t.Logf("netsoak/%s: %d ticks, %d failures, %d kills, net strikes %+v, stats %+v",
				tc.name, res.Ticks, res.Failures, chaos.Killed(), net, co.NetStats())
		})
	}
}
