package proc

// rawgolden_test.go pins the raw columnar wire format byte for byte:
// one golden fixture per raw payload kind (plus the raw snapshot
// blob), committed as hex under testdata/. The fixtures catch silent
// format drift — an encoder change that still round-trips locally but
// breaks decoding against processes running the committed format fails
// here — and the fixtures are additionally fed to a fresh subprocess
// decoder, proving the committed bytes (not just today's encoder
// output) stay decodable across a process boundary. Regenerate with
// OPTIFLOW_UPDATE_GOLDEN=1 go test ./internal/cluster/proc -run RawGolden
// after a deliberate, version-bumped format change.

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optiflow/internal/cluster/proc/wire"
)

// goldenRawCases returns one populated sample per raw payload kind, in
// a fixed order. Values exercise multi-partition sections, empty
// groups and non-trivial floats.
func goldenRawCases() []struct {
	name string
	m    any
} {
	return []struct {
		name string
		m    any
	}{
		{"stepreq", StepReq{
			Superstep: 7, Rescatter: true, Dangling: 0.375,
			Inbox: []PartMsgs{
				{Part: 0, Msgs: []Msg{{Dst: 3, Label: 1, Rank: 0.5}, {Dst: 4, Label: 2}}},
				{Part: 2, Msgs: []Msg{{Dst: 9, Rank: 0.125}}},
			},
		}},
		{"stepresp", StepResp{
			Outbox:   []PartMsgs{{Part: 1, Msgs: []Msg{{Dst: 5, Label: 5, Rank: 0.25}}}},
			Dangling: 0.0625, L1: 2.5, Folded: true, Messages: 42, Updates: 7,
		}},
		{"fetchresp", FetchResp{Parts: []PartState{
			{Part: 0, Vertices: []VertexVal{{ID: 1, Label: 1, Rank: 0.1}, {ID: 2, Label: 1, Rank: 0.2}}},
			{Part: 3},
		}}},
		{"restorereq", RestoreReq{Parts: []PartState{
			{Part: 2, Vertices: []VertexVal{{ID: 8, Label: 2, Rank: 0.75}}},
		}}},
		{"loadreq", LoadReq{
			Job: "golden", Kind: KindPageRank, NumPartitions: 4, TotalVertices: 5, Damping: 0.85,
			Parts: []PartitionData{
				{Part: 1, Vertices: []VertexAdj{{ID: 1, Out: []uint64{2, 3}}, {ID: 5, Out: []uint64{}}}},
			},
		}},
		{"datafetch", DataFetchReq{Stream: 9, ChunkVerts: 4096, Parts: []int{0, 2, 3}}},
		{"datarestore", DataRestoreReq{Stream: 10}},
		{"datachunk", DataChunk{
			Stream: 10, Seq: 3, Done: true,
			Parts: []PartState{{Part: 1, Vertices: []VertexVal{{ID: 4, Label: 4, Rank: 0.3}}}},
		}},
		{"dataack", DataAck{Stream: 10}},
		{"dataerr", DataErr{Stream: 11, Msg: "worker 2: partition 9 not hosted"}},
	}
}

// goldenSnapshot is the raw snapshot blob fixture's source value.
func goldenSnapshot() JobSnapshot {
	return JobSnapshot{
		Kind:      KindCC,
		Parts:     []PartState{{Part: 0, Vertices: []VertexVal{{ID: 2, Label: 1, Rank: 0.5}}}},
		Inbox:     []PartMsgs{{Part: 0, Msgs: []Msg{{Dst: 2, Label: 1}}}},
		Dangling:  0.125,
		Rescatter: true,
	}
}

// checkGolden compares got against the named fixture, rewriting it
// when OPTIFLOW_UPDATE_GOLDEN=1.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".hex")
	if os.Getenv("OPTIFLOW_UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(hex.EncodeToString(got)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s (regenerate with OPTIFLOW_UPDATE_GOLDEN=1): %v", path, err)
	}
	want, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatalf("corrupt golden fixture %s: %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: encoding drifted from the committed format\n got  %x\n want %x", name, got, want)
	}
}

// TestRawGoldenFrames pins every raw payload kind's frame bytes and
// proves the committed bytes decode in a fresh subprocess.
func TestRawGoldenFrames(t *testing.T) {
	var all bytes.Buffer
	cases := goldenRawCases()
	for _, c := range cases {
		b, err := encodeFrame(77, c.m)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if codec := b[4]; codec != wire.CodecRaw {
			t.Fatalf("%s: encoded with codec %#x, want raw", c.name, codec)
		}
		checkGolden(t, "raw_"+c.name, b)
		all.Write(b)
	}
	got := decodeInChild(t, all.Bytes())
	if len(got) != len(cases) {
		t.Fatalf("child decoded %d frames, want %d", len(got), len(cases))
	}
	for i, c := range cases {
		if want := fmt.Sprintf("%#v", c.m); got[i] != want {
			t.Errorf("%s mutated across the process boundary:\n sent %s\n got  %s", c.name, want, got[i])
		}
	}
}

// TestRawGoldenSnapshot pins the raw checkpoint blob format and its
// round trip, including the magic-sniff dispatch against gob blobs.
func TestRawGoldenSnapshot(t *testing.T) {
	snap := goldenSnapshot()
	b := appendSnapshot(nil, snap)
	checkGolden(t, "raw_snapshot", b)
	if !isRawSnapshot(b) {
		t.Fatal("raw snapshot blob not recognised by its magic")
	}
	got, err := decodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%#v", got) != fmt.Sprintf("%#v", snap) {
		t.Errorf("snapshot mutated:\n sent %#v\n got  %#v", snap, got)
	}
}

// TestRawVersionMismatch pins the forward-compatibility guard: a raw
// frame or snapshot blob stamped with a future format version is
// rejected with a typed *wire.VersionError, not misparsed.
func TestRawVersionMismatch(t *testing.T) {
	b, err := encodeFrame(1, DataAck{Stream: 5})
	if err != nil {
		t.Fatal(err)
	}
	b[5]++ // frame = 4B length, codec tag, then the raw version byte
	_, _, err = readFrameCfg(bytes.NewReader(b), defaultWire)
	var ve *wire.VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("decode of future-version frame: err = %v, want *wire.VersionError", err)
	}
	if ve.Got != wire.Version+1 || ve.Want != wire.Version {
		t.Errorf("VersionError = %+v, want Got=%d Want=%d", ve, wire.Version+1, wire.Version)
	}

	sb := appendSnapshot(nil, goldenSnapshot())
	sb[len(snapshotMagic)]++ // version byte follows the magic
	if _, err := decodeSnapshot(sb); !errors.As(err, &ve) {
		t.Fatalf("decode of future-version snapshot: err = %v, want *wire.VersionError", err)
	}
}
