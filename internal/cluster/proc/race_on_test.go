//go:build race

package proc

// raceEnabled reports whether the race detector instrumented this
// build. Allocation-ceiling tests skip under -race: the detector's
// shadow allocations inflate allocs/op past any meaningful bound.
const raceEnabled = true
