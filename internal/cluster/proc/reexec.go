package proc

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Worker daemons are spawned by re-executing the current binary with
// these environment variables set — the same pattern whether the
// binary is optiflow-serve or a test binary whose TestMain calls
// MaybeChildMode. No separate worker binary needs building or
// locating.
const (
	envWorker      = "OPTIFLOW_PROC_WORKER"
	envAddr        = "OPTIFLOW_PROC_ADDR"
	envID          = "OPTIFLOW_PROC_ID"
	envToken       = "OPTIFLOW_PROC_TOKEN"
	envBeatMS      = "OPTIFLOW_PROC_BEAT_MS"
	envHandshakeMS = "OPTIFLOW_PROC_HANDSHAKE_MS"
	envReconnectMS = "OPTIFLOW_PROC_RECONNECT_MS"
	envBackoffMS   = "OPTIFLOW_PROC_BACKOFF_MS"
	envDataConns   = "OPTIFLOW_PROC_DATA_CONNS"
	envMaxFrame    = "OPTIFLOW_PROC_MAX_FRAME"
	envGobPayloads = "OPTIFLOW_PROC_GOB_PAYLOADS"

	// envGobCheck switches the child into the wire-compatibility
	// decoder used by the gob round-trip suite: frames in on stdin,
	// one decoded-value digest per line on stdout.
	envGobCheck = "OPTIFLOW_PROC_GOBCHECK"
)

// MaybeChildMode checks whether this process was spawned as a proc
// child (worker daemon or gob-check decoder) and, if so, runs that
// role and exits — it never returns in child mode. Entry points that
// can host workers (cmd/optiflow-serve, TestMain of proc-mode test
// packages) must call it first thing in main.
func MaybeChildMode() {
	if os.Getenv(envGobCheck) == "1" {
		if err := runGobCheck(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "optiflow gob-check:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if os.Getenv(envWorker) != "1" {
		return
	}
	cfg, err := workerConfigFromEnv()
	if err == nil {
		err = RunWorker(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "optiflow worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// envDuration reads an optional millisecond-valued knob.
func envDuration(key string) time.Duration {
	if ms, err := strconv.Atoi(os.Getenv(key)); err == nil && ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return 0
}

// envInt reads an optional positive integer knob.
func envInt(key string) int {
	if n, err := strconv.Atoi(os.Getenv(key)); err == nil && n > 0 {
		return n
	}
	return 0
}

// workerConfigFromEnv rebuilds the WorkerConfig the coordinator
// serialised into the child's environment.
func workerConfigFromEnv() (WorkerConfig, error) {
	id, err := strconv.Atoi(os.Getenv(envID))
	if err != nil {
		return WorkerConfig{}, fmt.Errorf("proc: bad %s: %v", envID, err)
	}
	cfg := WorkerConfig{
		Addr:             os.Getenv(envAddr),
		Worker:           id,
		Token:            os.Getenv(envToken),
		Heartbeat:        envDuration(envBeatMS),
		HandshakeTimeout: envDuration(envHandshakeMS),
		ReconnectGrace:   envDuration(envReconnectMS),
		RetryBackoff:     envDuration(envBackoffMS),
		DataConns:        envInt(envDataConns),
		MaxFrameBytes:    envInt(envMaxFrame),
	}
	if gp := os.Getenv(envGobPayloads); gp != "" {
		cfg.GobPayloads = strings.Split(gp, ",")
	}
	if cfg.Addr == "" {
		return WorkerConfig{}, fmt.Errorf("proc: %s not set", envAddr)
	}
	return cfg, nil
}

// workerEnv serialises a worker's config for the spawned child. The
// timing knobs mirror the coordinator's: the same handshake deadline on
// both ends, and a reconnect grace that outlasts the suspicion ladder.
func workerEnv(addr string, id int, token string, cfg Config) []string {
	ms := func(d time.Duration) string { return strconv.Itoa(int(d / time.Millisecond)) }
	return append(os.Environ(),
		envWorker+"=1",
		envAddr+"="+addr,
		envID+"="+strconv.Itoa(id),
		envToken+"="+token,
		envBeatMS+"="+ms(cfg.Heartbeat),
		envHandshakeMS+"="+ms(cfg.HandshakeTimeout),
		envReconnectMS+"="+ms(cfg.ReconnectGrace),
		envBackoffMS+"="+ms(cfg.RetryBackoff),
		envDataConns+"="+strconv.Itoa(cfg.DataConns),
		envMaxFrame+"="+strconv.Itoa(cfg.MaxFrameBytes),
		envGobPayloads+"="+strings.Join(cfg.GobPayloads, ","),
	)
}

// runGobCheck is the child half of the wire-compatibility suite: a
// fresh process (fresh gob type registry, no state shared with the
// encoder beyond this package's init) decodes length-prefixed frames
// from stdin until EOF and prints one Go-syntax digest per decoded
// message. The parent compares the digests against its own rendering
// of what it encoded, proving that every wire type survives a
// cross-process round trip.
func runGobCheck(in io.Reader, out io.Writer) error {
	for {
		m, err := readFrame(in)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(out, "%#v\n", m); err != nil {
			return err
		}
	}
}
