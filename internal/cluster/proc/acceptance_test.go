package proc

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"optiflow/internal/algo/ref"
	"optiflow/internal/checkpoint"
	"optiflow/internal/failure"
	"optiflow/internal/graph"
	"optiflow/internal/iterate"
	"optiflow/internal/recovery"
	"optiflow/internal/supervise"
)

// recoveryMatrix is the policy matrix of the acceptance suite: each
// entry must carry a real SIGKILL mid-superstep and still converge to
// the reference fixpoint.
var recoveryMatrix = []struct {
	name   string
	policy func() recovery.Policy
}{
	{"optimistic", func() recovery.Policy { return recovery.Optimistic{} }},
	{"checkpoint", func() recovery.Policy { return recovery.NewCheckpoint(1, checkpoint.NewMemoryStore()) }},
	{"restart", func() recovery.Policy { return recovery.Restart{} }},
}

// TestProcCCSurvivesSIGKILLMidSuperstep is the paper's demo scenario
// on real processes: Connected Components, one worker SIGKILLed while
// its superstep-1 compute RPC is in flight, each recovery policy in
// turn. The converged labels must equal the union-find ground truth
// exactly — integer labels leave no tolerance to hide behind.
func TestProcCCSurvivesSIGKILLMidSuperstep(t *testing.T) {
	g := ccTestGraph()
	want := ref.ConnectedComponents(g)
	for _, tc := range recoveryMatrix {
		t.Run(tc.name, func(t *testing.T) {
			co := startTestCluster(t, 3, 6, nil)
			job, err := NewJob(co, Spec{Name: "cc-" + tc.name, Kind: KindCC, Graph: g})
			if err != nil {
				t.Fatalf("NewJob: %v", err)
			}
			sched := failure.NewScripted(nil).AtMidStep(1, 0, 1)
			loop := &iterate.Loop{
				Name:     "cc-" + tc.name,
				Step:     job.Step,
				Done:     iterate.DeltaDone(job.WorksetLen),
				Job:      job,
				Policy:   tc.policy(),
				Cluster:  co,
				Injector: DetectFailures(co, sched),
			}
			res, err := loop.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			assertAbortedKill(t, res, 1)
			got, err := job.Components()
			if err != nil {
				t.Fatalf("Components: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("components diverged from ground truth:\n got %v\nwant %v", got, want)
			}
		})
	}
}

// TestProcPageRankSurvivesSIGKILLMidSuperstep is the bulk-iteration
// counterpart: PageRank with dangling mass, one real SIGKILL while
// superstep 2 is in flight, converging to the power-iteration ground
// truth under every policy.
func TestProcPageRankSurvivesSIGKILLMidSuperstep(t *testing.T) {
	g := prTestGraph()
	want, _ := ref.PageRank(g, ref.PageRankOptions{})
	for _, tc := range recoveryMatrix {
		t.Run(tc.name, func(t *testing.T) {
			co := startTestCluster(t, 3, 6, nil)
			job, err := NewJob(co, Spec{Name: "pr-" + tc.name, Kind: KindPageRank, Graph: g})
			if err != nil {
				t.Fatalf("NewJob: %v", err)
			}
			sched := failure.NewScripted(nil).AtMidStep(2, 0, 1)
			loop := &iterate.Loop{
				Name: "pr-" + tc.name,
				Step: job.Step,
				Done: iterate.BulkDone(200, func(int) bool {
					return job.LastL1() < 1e-11
				}),
				Job:      job,
				Policy:   tc.policy(),
				Cluster:  co,
				Injector: DetectFailures(co, sched),
			}
			res, err := loop.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			assertAbortedKill(t, res, 1)
			got, err := job.Ranks()
			if err != nil {
				t.Fatalf("Ranks: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("rank map size %d, want %d", len(got), len(want))
			}
			for v, w := range want {
				if d := math.Abs(got[v] - w); d > 1e-6 {
					t.Errorf("rank[%d] = %.9f, want %.9f (|Δ|=%.2e)", v, got[v], w, d)
				}
			}
		})
	}
}

// TestProcNonePolicyFailsClosed: without a recovery mechanism, a real
// worker death must surface as ErrUnrecoverable, not silent data loss.
func TestProcNonePolicyFailsClosed(t *testing.T) {
	co := startTestCluster(t, 3, 6, nil)
	g := ccTestGraph()
	job, err := NewJob(co, Spec{Name: "cc-none", Kind: KindCC, Graph: g})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	sched := failure.NewScripted(nil).AtMidStep(1, 0, 1)
	loop := &iterate.Loop{
		Name:     "cc-none",
		Step:     job.Step,
		Done:     iterate.DeltaDone(job.WorksetLen),
		Job:      job,
		Policy:   recovery.None{},
		Cluster:  co,
		Injector: DetectFailures(co, sched),
	}
	if _, err := loop.Run(); !errors.Is(err, recovery.ErrUnrecoverable) {
		t.Fatalf("Run err = %v, want ErrUnrecoverable", err)
	}
}

// TestProcChaosSoak is the proc-mode soak gate: a supervised CC run
// under the process chaos injector, asserting that at least one real
// SIGKILL was delivered and the job still converged to ground truth.
func TestProcChaosSoak(t *testing.T) {
	co := startTestCluster(t, 4, 8, nil)
	g := soakGraph()
	want := ref.ConnectedComponents(g)
	job, err := NewJob(co, Spec{Name: "cc-soak", Kind: KindCC, Graph: g})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	chaos := NewChaos(co, 1).WithProbabilities(0.9, 0.1, 0.2).WithMaxFailures(3)
	inj := DetectFailures(co, chaos)
	sup := supervise.New(co, recovery.Optimistic{}, inj, supervise.Config{Spares: -1})
	loop := &iterate.Loop{
		Name:       "cc-soak",
		Step:       job.Step,
		Done:       iterate.DeltaDone(job.WorksetLen),
		Job:        job,
		Policy:     recovery.Optimistic{},
		Cluster:    co,
		Injector:   inj,
		Supervisor: sup,
		MaxTicks:   500,
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if chaos.Killed() < 1 {
		t.Fatalf("soak delivered %d real SIGKILLs, want >= 1 (failures seen: %d)",
			chaos.Killed(), res.Failures)
	}
	got, err := job.Components()
	if err != nil {
		t.Fatalf("Components: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("soak components diverged from ground truth:\n got %v\nwant %v", got, want)
	}
	t.Logf("soak: %d ticks, %d supersteps, %d failures, %d real kills",
		res.Ticks, res.Supersteps, res.Failures, chaos.Killed())
}

// assertAbortedKill demands the run actually carried a mid-superstep
// failure of the scripted worker — a matrix entry that silently ran
// clean proves nothing.
func assertAbortedKill(t *testing.T, res *iterate.Result, worker int) {
	t.Helper()
	for _, s := range res.Samples {
		if !s.Aborted {
			continue
		}
		for _, w := range s.FailedWorkers {
			if w == worker {
				return
			}
		}
	}
	t.Fatalf("no aborted sample blaming worker %d; the SIGKILL never landed", worker)
}

// prTestGraph is a small directed graph with a cycle, a chain and a
// dangling sink, so the dangling-mass protocol is on the hook.
func prTestGraph() *graph.Graph {
	b := graph.NewBuilder(true)
	b.AddEdge(1, 2).AddEdge(2, 3).AddEdge(3, 1)
	b.AddEdge(1, 4).AddEdge(3, 4)
	b.AddEdge(4, 5).AddEdge(2, 6).AddEdge(5, 6)
	// 6 is dangling: no out-edges.
	return b.Build()
}

// soakGraph is a larger two-component graph for the chaos soak: a ring
// and a binary-ish tree, enough supersteps for chaos to bite.
func soakGraph() *graph.Graph {
	b := graph.NewBuilder(false)
	const ring = 24
	for i := 0; i < ring; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%ring))
	}
	for i := 1; i <= 15; i++ {
		b.AddEdge(graph.VertexID(100+i), graph.VertexID(100+2*i))
	}
	return b.Build()
}
