package proc

import "time"

// liveness is the coordinator's heartbeat bookkeeping: pure data, no
// goroutines, no clock reads. Callers feed it receipt times (from
// internal/clock, so tests can drive it with a synthetic source) and
// ask which workers have missed their window. Detection by heartbeat
// is the slow path — a SIGKILLed child is usually noticed first by the
// process reaper or by a failing RPC — but it is the only path that
// catches a wedged-alive worker whose connections stay open.
type liveness struct {
	window time.Duration
	last   map[int]time.Time
}

func newLiveness(window time.Duration) *liveness {
	return &liveness{window: window, last: make(map[int]time.Time)}
}

// track starts the clock for a worker at its handshake: a worker that
// never beats at all becomes overdue one window after joining, not
// immediately.
func (l *liveness) track(w int, at time.Time) {
	l.last[w] = at
}

// beat records a heartbeat receipt.
func (l *liveness) beat(w int, at time.Time) {
	l.last[w] = at
}

// forget drops a worker's bookkeeping (failed, released).
func (l *liveness) forget(w int) {
	delete(l.last, w)
}

// overdue reports whether w has gone a full window without a beat.
// Untracked workers are never overdue (nothing is known about them).
func (l *liveness) overdue(w int, now time.Time) bool {
	_, over := l.overdueSince(w, now)
	return over
}

// overdueSince reports whether w has gone a full window without a beat
// and, if so, when its window expired — the moment the suspicion ladder
// starts counting from, so detection does not depend on how often it is
// polled. Untracked workers are never overdue.
func (l *liveness) overdueSince(w int, now time.Time) (time.Time, bool) {
	at, ok := l.last[w]
	if !ok {
		return time.Time{}, false
	}
	expiry := at.Add(l.window)
	if now.Sub(at) > l.window {
		return expiry, true
	}
	return time.Time{}, false
}
