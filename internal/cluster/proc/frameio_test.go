package proc

// frameio_test.go pins the two frame-I/O properties PR 10 added: the
// hot loop allocates O(1) per frame regardless of payload size (pooled
// assembly/receive buffers, stack header scratch), and the configurable
// frame-size cap rejects oversized payloads with a typed error on both
// the encode and decode side.

import (
	"bytes"
	"errors"
	"testing"

	"optiflow/internal/cluster/proc/wire"
)

// bigFetchResp builds a raw-encodable payload big enough that any
// per-element allocation would dominate the counters.
func bigFetchResp(n int) FetchResp {
	vs := make([]VertexVal, n)
	for i := range vs {
		vs[i] = VertexVal{ID: uint64(i), Label: uint64(i % 7), Rank: 1 / float64(i+1)}
	}
	return FetchResp{Parts: []PartState{{Part: 0, Vertices: vs}}}
}

// TestFrameEncodeAllocs pins the regression the pooled assembly buffer
// fixed: encoding a 4096-vertex raw frame must not allocate per vertex
// (or per frame, once the pool is warm).
func TestFrameEncodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc ceilings are meaningless under the race detector")
	}
	msg := bigFetchResp(4096)
	var sink bytes.Buffer
	sink.Grow(1 << 20)
	writeFrameCfg(&sink, 1, msg, defaultWire) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		sink.Reset()
		if err := writeFrameCfg(&sink, 1, msg, defaultWire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("raw frame encode: %.1f allocs/op, want <= 2 (pooled buffer regression)", allocs)
	}
}

// TestFrameDecodeAllocs pins the arena property: decoding a
// 4096-vertex raw frame costs a handful of allocations (arena, section
// bookkeeping, boxing), not one per vertex.
func TestFrameDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc ceilings are meaningless under the race detector")
	}
	frame, err := encodeFrame(1, bigFetchResp(4096))
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(frame)
	readFrameCfg(r, defaultWire) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		r.Reset(frame)
		if _, _, err := readFrameCfg(r, defaultWire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 16 {
		t.Errorf("raw frame decode: %.1f allocs/op, want <= 16 (arena regression)", allocs)
	}
}

// TestMaxFrameEncodeCap pins the configurable cap on the encode side:
// a payload one byte over the limit fails with a typed *wire.SizeError
// (so a caller can distinguish policy from transport), the exact
// boundary passes, and a failed encode leaves dst untouched.
func TestMaxFrameEncodeCap(t *testing.T) {
	msg := bigFetchResp(100)
	exact, err := encodeFrame(1, msg)
	if err != nil {
		t.Fatal(err)
	}
	payload := len(exact) - 4 // minus the length prefix

	if _, err := appendFrame(nil, 1, msg, &wireCfg{maxFrame: payload}); err != nil {
		t.Errorf("payload exactly at the cap rejected: %v", err)
	}
	dst := []byte("prefix")
	got, err := appendFrame(dst, 1, msg, &wireCfg{maxFrame: payload - 1})
	var se *wire.SizeError
	if !errors.As(err, &se) {
		t.Fatalf("oversized encode: err = %v, want *wire.SizeError", err)
	}
	if se.Size != payload || se.Limit != payload-1 {
		t.Errorf("SizeError = %+v, want Size=%d Limit=%d", se, payload, payload-1)
	}
	if string(got) != "prefix" {
		t.Errorf("failed encode left %d stray bytes in dst", len(got)-len(dst))
	}
}

// TestMaxFrameDecodeCap pins the cap on the decode side: a frame legal
// under the sender's policy but over the receiver's limit is rejected
// before its payload is read, with the same typed error.
func TestMaxFrameDecodeCap(t *testing.T) {
	frame, err := encodeFrame(1, bigFetchResp(100))
	if err != nil {
		t.Fatal(err)
	}
	payload := len(frame) - 4

	if _, _, err := readFrameCfg(bytes.NewReader(frame), &wireCfg{maxFrame: payload}); err != nil {
		t.Errorf("frame exactly at the cap rejected: %v", err)
	}
	_, _, err = readFrameCfg(bytes.NewReader(frame), &wireCfg{maxFrame: payload - 1})
	var se *wire.SizeError
	if !errors.As(err, &se) {
		t.Fatalf("oversized decode: err = %v, want *wire.SizeError", err)
	}
	if se.Size != payload || se.Limit != payload-1 {
		t.Errorf("SizeError = %+v, want Size=%d Limit=%d", se, payload, payload-1)
	}
}
