// Package proc is the multi-process deployment of the cluster model: a
// coordinator process (the driver) and worker daemons that are real
// operating-system processes, connected over TCP with gob-encoded
// frames. It is the "in action" counterpart of the in-process
// simulation in package cluster — same Interface, same membership
// semantics, but Fail(w) delivers an actual SIGKILL and recovery
// re-provisions an actual process.
//
// The wire protocol is deliberately small: every connection starts with
// a Hello handshake naming the worker and the connection's role
// ("ctrl" for serialized request/response RPC, "beat" for the worker's
// heartbeat push stream, "data/N" for the chunked state-transfer data
// plane), after which each side exchanges frames. Since protocol v2
// each frame is length-prefixed (netfault.HeaderLen bytes of
// big-endian payload length) and self-contained: a dropped, duplicated
// or delayed frame cannot desynchronise the stream the way
// shared-codec gob state would (the PR 8 desync lesson), and a
// reconnected connection resumes mid-job with no carried codec state.
// Since protocol v3 the payload's first byte selects its codec (see
// internal/cluster/proc/wire): low-rate control frames stay gob with a
// fresh encoder/decoder pair per frame, while hot-path payloads —
// superstep data, partition state, data-plane chunks — default to the
// raw columnar encoding of raw.go, with gob selectable per payload
// kind as a fallback (Config.GobPayloads). Frames carry an ID used as
// an idempotence token on ctrl RPCs — responses echo their request's
// ID, so the coordinator can discard stale responses after a retry and
// the worker can answer a duplicate request from cache instead of
// re-applying it. All message types are registered with gob in this
// package's init, and the wire-compatibility test round-trips every
// one of them — in both codecs — through a freshly started subprocess
// decoder to pin cross-process decodability.
package proc

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"optiflow/internal/checkpoint"
	"optiflow/internal/cluster/proc/netfault"
	"optiflow/internal/cluster/proc/wire"
)

// ProtoVersion is the wire protocol version. A Hello with a different
// version is rejected during the handshake, so a stale worker binary
// cannot silently exchange frames with a newer coordinator. Version 2
// introduced length-prefixed self-contained frames and idempotence
// IDs; version 3 added the per-payload codec tag (gob or raw
// columnar) and the data-plane connection role.
const ProtoVersion = 3

// Frame is the unit of transmission: one gob value wrapping one
// message. Wrapping in an interface-typed field keeps each frame
// self-describing — the decoder learns the concrete type from the gob
// type descriptor, so request dispatch is a type switch. ID is the
// ctrl-RPC idempotence token (responses echo their request's ID); it is
// zero on handshake and heartbeat frames.
type Frame struct {
	ID uint64
	M  any
}

// Hello opens every connection. Token authenticates the worker to the
// coordinator (it is handed to the worker process via its environment,
// so only processes the coordinator spawned can join). Conn is the
// connection's role: "ctrl" or "beat".
type Hello struct {
	Proto  int
	Worker int
	Token  string
	Conn   string
}

// Connection roles named in Hello.Conn. Data-plane connections are
// numbered — "data/0", "data/1", … — so each slot of a worker's pool
// handshakes (and reconnects) independently; see dataRole.
const (
	ConnCtrl = "ctrl"
	ConnBeat = "beat"
	connData = "data"
)

// dataRole names data-plane connection slot i.
func dataRole(i int) string { return connData + "/" + strconv.Itoa(i) }

// parseDataRole recognises a data-plane role, returning its slot.
func parseDataRole(role string) (int, bool) {
	rest, ok := strings.CutPrefix(role, connData+"/")
	if !ok {
		return 0, false
	}
	i, err := strconv.Atoi(rest)
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}

// HelloOK acknowledges a Hello.
type HelloOK struct {
	Proto int
}

// Heartbeat is pushed periodically by the worker on its beat
// connection. Seq increases monotonically per worker.
type Heartbeat struct {
	Worker int
	Seq    uint64
}

// OKResp acknowledges a request that returns no payload.
type OKResp struct{}

// ErrResp reports a request failure; the RPC layer surfaces it as an
// error to the caller.
type ErrResp struct {
	Msg string
}

// PingReq checks liveness over the ctrl connection.
type PingReq struct{}

// VertexAdj is one vertex's adjacency: its ID and out-neighbors.
type VertexAdj struct {
	ID  uint64
	Out []uint64
}

// PartitionData is the adjacency payload of one state partition.
type PartitionData struct {
	Part     int
	Vertices []VertexAdj
}

// LoadReq hands a worker the partitions it hosts: the job identity,
// the algorithm kind, global graph facts and per-partition adjacency.
// State is initialised to superstep zero (CC: own ID as label; PR:
// uniform rank 1/N). LoadReq is also how a replacement worker adopts
// orphaned partitions mid-job — the driver then Clears or Restores
// them per the recovery policy.
type LoadReq struct {
	Job           string
	Kind          string
	NumPartitions int
	TotalVertices int
	Damping       float64
	Parts         []PartitionData
}

// Algorithm kinds named in LoadReq.Kind.
const (
	KindCC       = "cc"
	KindPageRank = "pagerank"
)

// Msg is one dataflow record in flight between supersteps. CC uses
// Label (a candidate component label), PageRank uses Rank (a rank
// contribution); the unused field stays zero.
type Msg struct {
	Dst   uint64
	Label uint64
	Rank  float64
}

// PartMsgs groups the messages destined for one partition.
type PartMsgs struct {
	Part int
	Msgs []Msg
}

// StepReq runs one superstep attempt over the worker's partitions.
// Rescatter asks every vertex to re-send its current state to its
// neighbors (superstep zero, and after an optimistic compensation);
// Dangling is the dangling-rank mass collected in the previous
// superstep (PageRank only). The worker computes but does not apply:
// updates stay pending until CommitReq, and AbortReq drops them — the
// two-phase protocol that lets an aborted attempt be replayed against
// unchanged state.
type StepReq struct {
	Superstep int
	Rescatter bool
	Dangling  float64
	Inbox     []PartMsgs
}

// StepResp reports one superstep attempt's outputs: the outgoing
// messages grouped by destination partition, the dangling mass and L1
// rank delta (PageRank; Folded reports whether a fold happened, so a
// pure rescatter step does not fake convergence), and the counters the
// iteration driver samples.
type StepResp struct {
	Outbox   []PartMsgs
	Dangling float64
	L1       float64
	Folded   bool
	Messages int64
	Updates  int64
}

// CommitReq applies the pending updates of the superstep computed by
// the previous StepReq.
type CommitReq struct {
	Superstep int
}

// AbortReq drops the pending updates of the previous StepReq, leaving
// state as it was before the attempt.
type AbortReq struct{}

// VertexVal is one vertex's iteration state.
type VertexVal struct {
	ID    uint64
	Label uint64
	Rank  float64
}

// PartState is the full committed state of one partition, vertices in
// ascending ID order.
type PartState struct {
	Part     int
	Vertices []VertexVal
}

// FetchReq reads the committed state of the listed partitions
// (checkpoint capture, final result collection, release migration).
type FetchReq struct {
	Parts []int
}

// FetchResp answers a FetchReq.
type FetchResp struct {
	Parts []PartState
}

// RestoreReq overwrites the listed partitions' state (checkpoint
// rollback, release migration).
type RestoreReq struct {
	Parts []PartState
}

// ClearReq reinitialises the listed partitions to superstep-zero state
// — the direct effect of their previous owner crashing.
type ClearReq struct {
	Parts []int
}

// ResetReq reinitialises every hosted partition (restart policy).
type ResetReq struct{}

// ShutdownReq asks the worker to exit cleanly (cooperative Release —
// unlike the SIGKILL of Fail).
type ShutdownReq struct{}

// StatsReq asks a worker for its request-handling counters — the
// observability hook the idempotence regression tests use to prove a
// retried RPC was answered from cache rather than re-applied.
type StatsReq struct{}

// WorkerStats answers a StatsReq. Handled counts requests whose effect
// was applied exactly once; Replayed counts duplicate deliveries that
// were answered from the idempotence cache without re-applying.
type WorkerStats struct {
	Handled  uint64
	Replayed uint64
}

// JobSnapshot is the driver-side serialisation of a proc job's full
// iteration state: every partition's vertex values plus the in-flight
// message state the next superstep consumes. recovery.Job's SnapshotTo
// gob-encodes one of these; RestoreFrom decodes it and pushes the
// partitions back to their current owners.
type JobSnapshot struct {
	Kind      string
	Parts     []PartState
	Inbox     []PartMsgs
	Dangling  float64
	Rescatter bool
}

// DataFetchReq opens a fetch stream on a data-plane connection: the
// worker answers with DataChunk frames carrying the listed partitions'
// committed state, at most ChunkVerts vertices per chunk, the last
// chunk marked Done. Stream tags the transfer so a late frame from an
// abandoned stream cannot be mistaken for the current one.
type DataFetchReq struct {
	Stream     uint64
	ChunkVerts int
	Parts      []int
}

// DataRestoreReq opens a restore stream: the coordinator follows it
// with DataChunk frames whose state fragments the worker applies as
// they arrive, answering DataAck (or DataErr) after the Done chunk.
type DataRestoreReq struct {
	Stream uint64
}

// DataChunk is one bounded fragment of a state stream. Parts carries
// partition state fragments — a partition larger than the chunk budget
// spans several chunks, each listing the vertices it covers.
type DataChunk struct {
	Stream uint64
	Seq    uint32
	Done   bool
	Parts  []PartState
}

// DataAck completes a restore stream.
type DataAck struct {
	Stream uint64
}

// DataErr reports a stream-level application error (unknown partition,
// say). Transport failures don't get a frame — the connection breaks.
type DataErr struct {
	Stream uint64
	Msg    string
}

// wireMessages lists every concrete type that may travel inside a
// Frame, in a fixed order shared by gob registration and the
// cross-process wire-compatibility check.
func wireMessages() []any {
	return []any{
		Hello{}, HelloOK{}, Heartbeat{},
		OKResp{}, ErrResp{}, PingReq{},
		LoadReq{}, StepReq{}, StepResp{},
		CommitReq{}, AbortReq{},
		FetchReq{}, FetchResp{}, RestoreReq{}, ClearReq{}, ResetReq{},
		ShutdownReq{},
		StatsReq{}, WorkerStats{},
		JobSnapshot{},
		checkpoint.CommitRecord{},
		DataFetchReq{}, DataRestoreReq{}, DataChunk{}, DataAck{}, DataErr{},
	}
}

func init() {
	for _, m := range wireMessages() {
		gob.Register(m)
	}
}

// wireCfg is the encoder-local wire policy: the (configurable) frame
// size cap and the payload kinds forced onto the gob fallback. Decoders
// accept both codecs regardless, so the policy needs no negotiation —
// each end just encodes by its own.
type wireCfg struct {
	maxFrame int           // payload cap; 0 = netfault.MaxFrame
	gobKinds map[byte]bool // raw-capable kinds forced to gob
}

// defaultWire is the policy of plain writeFrame/readFrame callers
// (handshakes, heartbeats, the gob-check child): everything raw-capable
// goes raw, frames capped at the hard ceiling.
var defaultWire = &wireCfg{}

// max returns the effective payload cap.
func (wc *wireCfg) max() int {
	if wc == nil || wc.maxFrame <= 0 || wc.maxFrame > netfault.MaxFrame {
		return netfault.MaxFrame
	}
	return wc.maxFrame
}

// forceGob reports whether the kind is on the gob fallback list.
func (wc *wireCfg) forceGob(kind byte) bool { return wc != nil && wc.gobKinds[kind] }

// Payload-kind names accepted by Config.GobPayloads.
const (
	PayloadStep     = "step"     // StepReq / StepResp
	PayloadState    = "state"    // FetchResp / RestoreReq (disables the data plane)
	PayloadLoad     = "load"     // LoadReq
	PayloadSnapshot = "snapshot" // the JobSnapshot checkpoint blob
)

// parseGobPayloads resolves payload-kind names to the raw kinds they
// cover.
func parseGobPayloads(names []string) (map[byte]bool, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := make(map[byte]bool)
	for _, n := range names {
		switch strings.TrimSpace(n) {
		case "":
		case PayloadStep:
			out[wire.KStepReq] = true
			out[wire.KStepResp] = true
		case PayloadState:
			out[wire.KFetchResp] = true
			out[wire.KRestoreReq] = true
		case PayloadLoad:
			out[wire.KLoadReq] = true
		case PayloadSnapshot:
			out[wire.KSnapshot] = true
		default:
			return nil, fmt.Errorf("proc: unknown gob payload kind %q", n)
		}
	}
	return out, nil
}

// sliceWriter adapts an append-grown []byte to io.Writer for the gob
// encoder, so gob frames assemble in the same pooled buffer raw frames
// do.
type sliceWriter struct{ b []byte }

func (sw *sliceWriter) Write(p []byte) (int, error) {
	sw.b = append(sw.b, p...)
	return len(p), nil
}

// appendFrame appends one complete length-prefixed frame for m to dst:
// raw codec for hot-path payloads (unless the policy forces gob), gob
// for everything else. The returned slice is dst possibly regrown.
func appendFrame(dst []byte, id uint64, m any, wc *wireCfg) ([]byte, error) {
	start := len(dst)
	dst = append(dst, make([]byte, netfault.HeaderLen)...)
	if kind, ok := rawKindOf(m); ok && !wc.forceGob(kind) {
		dst = appendRawPayload(dst, kind, id, m)
	} else {
		sw := sliceWriter{b: append(dst, wire.CodecGob)}
		if err := gob.NewEncoder(&sw).Encode(Frame{ID: id, M: m}); err != nil {
			return dst[:start], fmt.Errorf("proc: encoding %T: %v", m, err)
		}
		dst = sw.b
	}
	payload := len(dst) - start - netfault.HeaderLen
	if err := wire.CheckSize(payload, wc.max()); err != nil {
		return dst[:start], fmt.Errorf("proc: encoding %T: %w", m, err)
	}
	netfault.PutHeader(dst[start:], payload)
	return dst, nil
}

// encodeFrame renders one frame as a self-contained byte block the
// caller owns (tests, the compatibility suite). The hot path is
// writeFrameCfg, which assembles into a pooled buffer instead.
func encodeFrame(id uint64, m any) ([]byte, error) {
	return appendFrame(nil, id, m, defaultWire)
}

// framePool recycles frame-assembly and frame-receive buffers across
// the send and receive loops — the PR 10 fix for the per-frame
// allocations that dominated the proc hot path.
var framePool = sync.Pool{New: func() any { return &wire.Buf{} }}

// writeFrameCfg writes one message as a single self-contained frame
// under the given policy. The frame reaches the connection in exactly
// one Write call — the contract the netfault wrapper relies on to see
// frame boundaries — and its buffer returns to the pool afterwards.
func writeFrameCfg(w io.Writer, id uint64, m any, wc *wireCfg) error {
	buf := framePool.Get().(*wire.Buf)
	b, err := appendFrame(buf.B[:0], id, m, wc)
	buf.B = b[:0]
	if err != nil {
		framePool.Put(buf)
		return err
	}
	_, err = w.Write(b)
	framePool.Put(buf)
	if err != nil {
		return fmt.Errorf("proc: writing %T: %w", m, err)
	}
	return nil
}

// writeFrameID writes one message under the default policy.
func writeFrameID(w io.Writer, id uint64, m any) error {
	return writeFrameCfg(w, id, m, defaultWire)
}

// writeFrame writes a message with no idempotence token (handshake,
// heartbeat and push frames).
func writeFrame(w io.Writer, m any) error {
	return writeFrameID(w, 0, m)
}

// readFrameCfg reads the next complete frame under the given policy,
// returning its idempotence token alongside the message. The payload is
// read into a pooled buffer; both codecs' decoders copy everything out
// (gob by construction, raw by the arena rule), so the buffer recycles
// immediately. Read errors from the connection are returned wrapped
// (%w) so deadline expiry stays detectable via net.Error.
func readFrameCfg(r io.Reader, wc *wireCfg) (uint64, any, error) {
	var hdr [netfault.HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n, err := netfault.ParseHeader(hdr[:])
	if err != nil {
		return 0, nil, err
	}
	if err := wire.CheckSize(n, wc.max()); err != nil {
		return 0, nil, fmt.Errorf("proc: reading frame: %w", err)
	}
	buf := framePool.Get().(*wire.Buf)
	defer framePool.Put(buf)
	if cap(buf.B) < n {
		buf.B = make([]byte, n)
	}
	payload := buf.B[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("proc: reading frame body: %w", err)
	}
	if n == 0 {
		return 0, nil, errors.New("proc: empty frame")
	}
	switch payload[0] {
	case wire.CodecRaw:
		return decodeRawPayload(payload[1:])
	case wire.CodecGob:
		var f Frame
		if err := gob.NewDecoder(bytes.NewReader(payload[1:])).Decode(&f); err != nil {
			return 0, nil, fmt.Errorf("proc: decoding frame: %v", err)
		}
		if f.M == nil {
			return 0, nil, errors.New("proc: empty frame")
		}
		return f.ID, f.M, nil
	default:
		return 0, nil, fmt.Errorf("proc: unknown frame codec %#x", payload[0])
	}
}

// readFrameID reads the next frame under the default policy.
func readFrameID(r io.Reader) (uint64, any, error) {
	return readFrameCfg(r, defaultWire)
}

// readFrame reads the next frame's message, discarding the token.
func readFrame(r io.Reader) (any, error) {
	_, m, err := readFrameID(r)
	return m, err
}

// isTimeout reports whether err is (or wraps) a network timeout — the
// signal that a frame may have been lost in flight, as opposed to the
// connection being broken.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
