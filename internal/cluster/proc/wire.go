// Package proc is the multi-process deployment of the cluster model: a
// coordinator process (the driver) and worker daemons that are real
// operating-system processes, connected over TCP with gob-encoded
// frames. It is the "in action" counterpart of the in-process
// simulation in package cluster — same Interface, same membership
// semantics, but Fail(w) delivers an actual SIGKILL and recovery
// re-provisions an actual process.
//
// The wire protocol is deliberately small: every connection starts with
// a Hello handshake naming the worker and the connection's role
// ("ctrl" for serialized request/response RPC, "beat" for the worker's
// heartbeat push stream), after which each side exchanges frames — a
// single gob stream of Frame values whose M field carries one of the
// message types below. All message types are registered with gob in
// this package's init, and the wire-compatibility test round-trips
// every one of them through a freshly started subprocess decoder to
// pin cross-process decodability.
package proc

import (
	"encoding/gob"
	"fmt"

	"optiflow/internal/checkpoint"
)

// ProtoVersion is the wire protocol version. A Hello with a different
// version is rejected during the handshake, so a stale worker binary
// cannot silently exchange frames with a newer coordinator.
const ProtoVersion = 1

// Frame is the unit of transmission: one gob value wrapping one
// message. Wrapping in an interface-typed field keeps the stream
// self-describing — the decoder learns the concrete type from the gob
// type descriptor, so request dispatch is a type switch.
type Frame struct {
	M any
}

// Hello opens every connection. Token authenticates the worker to the
// coordinator (it is handed to the worker process via its environment,
// so only processes the coordinator spawned can join). Conn is the
// connection's role: "ctrl" or "beat".
type Hello struct {
	Proto  int
	Worker int
	Token  string
	Conn   string
}

// Connection roles named in Hello.Conn.
const (
	ConnCtrl = "ctrl"
	ConnBeat = "beat"
)

// HelloOK acknowledges a Hello.
type HelloOK struct {
	Proto int
}

// Heartbeat is pushed periodically by the worker on its beat
// connection. Seq increases monotonically per worker.
type Heartbeat struct {
	Worker int
	Seq    uint64
}

// OKResp acknowledges a request that returns no payload.
type OKResp struct{}

// ErrResp reports a request failure; the RPC layer surfaces it as an
// error to the caller.
type ErrResp struct {
	Msg string
}

// PingReq checks liveness over the ctrl connection.
type PingReq struct{}

// VertexAdj is one vertex's adjacency: its ID and out-neighbors.
type VertexAdj struct {
	ID  uint64
	Out []uint64
}

// PartitionData is the adjacency payload of one state partition.
type PartitionData struct {
	Part     int
	Vertices []VertexAdj
}

// LoadReq hands a worker the partitions it hosts: the job identity,
// the algorithm kind, global graph facts and per-partition adjacency.
// State is initialised to superstep zero (CC: own ID as label; PR:
// uniform rank 1/N). LoadReq is also how a replacement worker adopts
// orphaned partitions mid-job — the driver then Clears or Restores
// them per the recovery policy.
type LoadReq struct {
	Job           string
	Kind          string
	NumPartitions int
	TotalVertices int
	Damping       float64
	Parts         []PartitionData
}

// Algorithm kinds named in LoadReq.Kind.
const (
	KindCC       = "cc"
	KindPageRank = "pagerank"
)

// Msg is one dataflow record in flight between supersteps. CC uses
// Label (a candidate component label), PageRank uses Rank (a rank
// contribution); the unused field stays zero.
type Msg struct {
	Dst   uint64
	Label uint64
	Rank  float64
}

// PartMsgs groups the messages destined for one partition.
type PartMsgs struct {
	Part int
	Msgs []Msg
}

// StepReq runs one superstep attempt over the worker's partitions.
// Rescatter asks every vertex to re-send its current state to its
// neighbors (superstep zero, and after an optimistic compensation);
// Dangling is the dangling-rank mass collected in the previous
// superstep (PageRank only). The worker computes but does not apply:
// updates stay pending until CommitReq, and AbortReq drops them — the
// two-phase protocol that lets an aborted attempt be replayed against
// unchanged state.
type StepReq struct {
	Superstep int
	Rescatter bool
	Dangling  float64
	Inbox     []PartMsgs
}

// StepResp reports one superstep attempt's outputs: the outgoing
// messages grouped by destination partition, the dangling mass and L1
// rank delta (PageRank; Folded reports whether a fold happened, so a
// pure rescatter step does not fake convergence), and the counters the
// iteration driver samples.
type StepResp struct {
	Outbox   []PartMsgs
	Dangling float64
	L1       float64
	Folded   bool
	Messages int64
	Updates  int64
}

// CommitReq applies the pending updates of the superstep computed by
// the previous StepReq.
type CommitReq struct {
	Superstep int
}

// AbortReq drops the pending updates of the previous StepReq, leaving
// state as it was before the attempt.
type AbortReq struct{}

// VertexVal is one vertex's iteration state.
type VertexVal struct {
	ID    uint64
	Label uint64
	Rank  float64
}

// PartState is the full committed state of one partition, vertices in
// ascending ID order.
type PartState struct {
	Part     int
	Vertices []VertexVal
}

// FetchReq reads the committed state of the listed partitions
// (checkpoint capture, final result collection, release migration).
type FetchReq struct {
	Parts []int
}

// FetchResp answers a FetchReq.
type FetchResp struct {
	Parts []PartState
}

// RestoreReq overwrites the listed partitions' state (checkpoint
// rollback, release migration).
type RestoreReq struct {
	Parts []PartState
}

// ClearReq reinitialises the listed partitions to superstep-zero state
// — the direct effect of their previous owner crashing.
type ClearReq struct {
	Parts []int
}

// ResetReq reinitialises every hosted partition (restart policy).
type ResetReq struct{}

// ShutdownReq asks the worker to exit cleanly (cooperative Release —
// unlike the SIGKILL of Fail).
type ShutdownReq struct{}

// JobSnapshot is the driver-side serialisation of a proc job's full
// iteration state: every partition's vertex values plus the in-flight
// message state the next superstep consumes. recovery.Job's SnapshotTo
// gob-encodes one of these; RestoreFrom decodes it and pushes the
// partitions back to their current owners.
type JobSnapshot struct {
	Kind      string
	Parts     []PartState
	Inbox     []PartMsgs
	Dangling  float64
	Rescatter bool
}

// wireMessages lists every concrete type that may travel inside a
// Frame, in a fixed order shared by gob registration and the
// cross-process wire-compatibility check.
func wireMessages() []any {
	return []any{
		Hello{}, HelloOK{}, Heartbeat{},
		OKResp{}, ErrResp{}, PingReq{},
		LoadReq{}, StepReq{}, StepResp{},
		CommitReq{}, AbortReq{},
		FetchReq{}, FetchResp{}, RestoreReq{}, ClearReq{}, ResetReq{},
		ShutdownReq{},
		JobSnapshot{},
		checkpoint.CommitRecord{},
	}
}

func init() {
	for _, m := range wireMessages() {
		gob.Register(m)
	}
}

// writeFrame encodes one message as a Frame on the stream.
func writeFrame(enc *gob.Encoder, m any) error {
	if err := enc.Encode(Frame{M: m}); err != nil {
		return fmt.Errorf("proc: encoding %T: %v", m, err)
	}
	return nil
}

// readFrame decodes the next Frame and unwraps its message.
func readFrame(dec *gob.Decoder) (any, error) {
	var f Frame
	if err := dec.Decode(&f); err != nil {
		return nil, err
	}
	if f.M == nil {
		return nil, fmt.Errorf("proc: empty frame")
	}
	return f.M, nil
}
