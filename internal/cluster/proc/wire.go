// Package proc is the multi-process deployment of the cluster model: a
// coordinator process (the driver) and worker daemons that are real
// operating-system processes, connected over TCP with gob-encoded
// frames. It is the "in action" counterpart of the in-process
// simulation in package cluster — same Interface, same membership
// semantics, but Fail(w) delivers an actual SIGKILL and recovery
// re-provisions an actual process.
//
// The wire protocol is deliberately small: every connection starts with
// a Hello handshake naming the worker and the connection's role
// ("ctrl" for serialized request/response RPC, "beat" for the worker's
// heartbeat push stream), after which each side exchanges frames. Since
// protocol v2 each frame is length-prefixed (netfault.HeaderLen bytes
// of big-endian payload length) and gob-encoded with a fresh
// encoder/decoder pair, so frames are self-contained: a dropped,
// duplicated or delayed frame cannot desynchronise the stream the way
// shared-codec gob state would (the PR 8 desync lesson), and a
// reconnected connection resumes mid-job with no carried codec state.
// Frames carry an ID used as an idempotence token on ctrl RPCs —
// responses echo their request's ID, so the coordinator can discard
// stale responses after a retry and the worker can answer a duplicate
// request from cache instead of re-applying it. All message types are
// registered with gob in this package's init, and the
// wire-compatibility test round-trips every one of them through a
// freshly started subprocess decoder to pin cross-process decodability.
package proc

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"

	"optiflow/internal/checkpoint"
	"optiflow/internal/cluster/proc/netfault"
)

// ProtoVersion is the wire protocol version. A Hello with a different
// version is rejected during the handshake, so a stale worker binary
// cannot silently exchange frames with a newer coordinator. Version 2
// introduced length-prefixed self-contained frames and idempotence IDs.
const ProtoVersion = 2

// Frame is the unit of transmission: one gob value wrapping one
// message. Wrapping in an interface-typed field keeps each frame
// self-describing — the decoder learns the concrete type from the gob
// type descriptor, so request dispatch is a type switch. ID is the
// ctrl-RPC idempotence token (responses echo their request's ID); it is
// zero on handshake and heartbeat frames.
type Frame struct {
	ID uint64
	M  any
}

// Hello opens every connection. Token authenticates the worker to the
// coordinator (it is handed to the worker process via its environment,
// so only processes the coordinator spawned can join). Conn is the
// connection's role: "ctrl" or "beat".
type Hello struct {
	Proto  int
	Worker int
	Token  string
	Conn   string
}

// Connection roles named in Hello.Conn.
const (
	ConnCtrl = "ctrl"
	ConnBeat = "beat"
)

// HelloOK acknowledges a Hello.
type HelloOK struct {
	Proto int
}

// Heartbeat is pushed periodically by the worker on its beat
// connection. Seq increases monotonically per worker.
type Heartbeat struct {
	Worker int
	Seq    uint64
}

// OKResp acknowledges a request that returns no payload.
type OKResp struct{}

// ErrResp reports a request failure; the RPC layer surfaces it as an
// error to the caller.
type ErrResp struct {
	Msg string
}

// PingReq checks liveness over the ctrl connection.
type PingReq struct{}

// VertexAdj is one vertex's adjacency: its ID and out-neighbors.
type VertexAdj struct {
	ID  uint64
	Out []uint64
}

// PartitionData is the adjacency payload of one state partition.
type PartitionData struct {
	Part     int
	Vertices []VertexAdj
}

// LoadReq hands a worker the partitions it hosts: the job identity,
// the algorithm kind, global graph facts and per-partition adjacency.
// State is initialised to superstep zero (CC: own ID as label; PR:
// uniform rank 1/N). LoadReq is also how a replacement worker adopts
// orphaned partitions mid-job — the driver then Clears or Restores
// them per the recovery policy.
type LoadReq struct {
	Job           string
	Kind          string
	NumPartitions int
	TotalVertices int
	Damping       float64
	Parts         []PartitionData
}

// Algorithm kinds named in LoadReq.Kind.
const (
	KindCC       = "cc"
	KindPageRank = "pagerank"
)

// Msg is one dataflow record in flight between supersteps. CC uses
// Label (a candidate component label), PageRank uses Rank (a rank
// contribution); the unused field stays zero.
type Msg struct {
	Dst   uint64
	Label uint64
	Rank  float64
}

// PartMsgs groups the messages destined for one partition.
type PartMsgs struct {
	Part int
	Msgs []Msg
}

// StepReq runs one superstep attempt over the worker's partitions.
// Rescatter asks every vertex to re-send its current state to its
// neighbors (superstep zero, and after an optimistic compensation);
// Dangling is the dangling-rank mass collected in the previous
// superstep (PageRank only). The worker computes but does not apply:
// updates stay pending until CommitReq, and AbortReq drops them — the
// two-phase protocol that lets an aborted attempt be replayed against
// unchanged state.
type StepReq struct {
	Superstep int
	Rescatter bool
	Dangling  float64
	Inbox     []PartMsgs
}

// StepResp reports one superstep attempt's outputs: the outgoing
// messages grouped by destination partition, the dangling mass and L1
// rank delta (PageRank; Folded reports whether a fold happened, so a
// pure rescatter step does not fake convergence), and the counters the
// iteration driver samples.
type StepResp struct {
	Outbox   []PartMsgs
	Dangling float64
	L1       float64
	Folded   bool
	Messages int64
	Updates  int64
}

// CommitReq applies the pending updates of the superstep computed by
// the previous StepReq.
type CommitReq struct {
	Superstep int
}

// AbortReq drops the pending updates of the previous StepReq, leaving
// state as it was before the attempt.
type AbortReq struct{}

// VertexVal is one vertex's iteration state.
type VertexVal struct {
	ID    uint64
	Label uint64
	Rank  float64
}

// PartState is the full committed state of one partition, vertices in
// ascending ID order.
type PartState struct {
	Part     int
	Vertices []VertexVal
}

// FetchReq reads the committed state of the listed partitions
// (checkpoint capture, final result collection, release migration).
type FetchReq struct {
	Parts []int
}

// FetchResp answers a FetchReq.
type FetchResp struct {
	Parts []PartState
}

// RestoreReq overwrites the listed partitions' state (checkpoint
// rollback, release migration).
type RestoreReq struct {
	Parts []PartState
}

// ClearReq reinitialises the listed partitions to superstep-zero state
// — the direct effect of their previous owner crashing.
type ClearReq struct {
	Parts []int
}

// ResetReq reinitialises every hosted partition (restart policy).
type ResetReq struct{}

// ShutdownReq asks the worker to exit cleanly (cooperative Release —
// unlike the SIGKILL of Fail).
type ShutdownReq struct{}

// StatsReq asks a worker for its request-handling counters — the
// observability hook the idempotence regression tests use to prove a
// retried RPC was answered from cache rather than re-applied.
type StatsReq struct{}

// WorkerStats answers a StatsReq. Handled counts requests whose effect
// was applied exactly once; Replayed counts duplicate deliveries that
// were answered from the idempotence cache without re-applying.
type WorkerStats struct {
	Handled  uint64
	Replayed uint64
}

// JobSnapshot is the driver-side serialisation of a proc job's full
// iteration state: every partition's vertex values plus the in-flight
// message state the next superstep consumes. recovery.Job's SnapshotTo
// gob-encodes one of these; RestoreFrom decodes it and pushes the
// partitions back to their current owners.
type JobSnapshot struct {
	Kind      string
	Parts     []PartState
	Inbox     []PartMsgs
	Dangling  float64
	Rescatter bool
}

// wireMessages lists every concrete type that may travel inside a
// Frame, in a fixed order shared by gob registration and the
// cross-process wire-compatibility check.
func wireMessages() []any {
	return []any{
		Hello{}, HelloOK{}, Heartbeat{},
		OKResp{}, ErrResp{}, PingReq{},
		LoadReq{}, StepReq{}, StepResp{},
		CommitReq{}, AbortReq{},
		FetchReq{}, FetchResp{}, RestoreReq{}, ClearReq{}, ResetReq{},
		ShutdownReq{},
		StatsReq{}, WorkerStats{},
		JobSnapshot{},
		checkpoint.CommitRecord{},
	}
}

func init() {
	for _, m := range wireMessages() {
		gob.Register(m)
	}
}

// encodeFrame renders one frame as a complete length-prefixed byte
// block using a fresh encoder, so the block is self-contained (carries
// its own gob type descriptors and no shared stream state).
func encodeFrame(id uint64, m any) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(make([]byte, netfault.HeaderLen))
	if err := gob.NewEncoder(&buf).Encode(Frame{ID: id, M: m}); err != nil {
		return nil, fmt.Errorf("proc: encoding %T: %v", m, err)
	}
	b := buf.Bytes()
	if len(b)-netfault.HeaderLen > netfault.MaxFrame {
		return nil, fmt.Errorf("proc: frame %T exceeds %d bytes", m, netfault.MaxFrame)
	}
	netfault.PutHeader(b, len(b)-netfault.HeaderLen)
	return b, nil
}

// writeFrameID writes one message as a single self-contained frame. The
// frame reaches the connection in exactly one Write call — the contract
// the netfault wrapper relies on to see frame boundaries.
func writeFrameID(w io.Writer, id uint64, m any) error {
	b, err := encodeFrame(id, m)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("proc: writing %T: %w", m, err)
	}
	return nil
}

// writeFrame writes a message with no idempotence token (handshake,
// heartbeat and push frames).
func writeFrame(w io.Writer, m any) error {
	return writeFrameID(w, 0, m)
}

// readFrameID reads the next complete frame, returning its idempotence
// token alongside the message. Read errors from the connection are
// returned wrapped (%w) so deadline expiry stays detectable via
// net.Error.
func readFrameID(r io.Reader) (uint64, any, error) {
	var hdr [netfault.HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n, err := netfault.ParseHeader(hdr[:])
	if err != nil {
		return 0, nil, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("proc: reading frame body: %w", err)
	}
	var f Frame
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&f); err != nil {
		return 0, nil, fmt.Errorf("proc: decoding frame: %v", err)
	}
	if f.M == nil {
		return 0, nil, errors.New("proc: empty frame")
	}
	return f.ID, f.M, nil
}

// readFrame reads the next frame's message, discarding the token.
func readFrame(r io.Reader) (any, error) {
	_, m, err := readFrameID(r)
	return m, err
}

// isTimeout reports whether err is (or wraps) a network timeout — the
// signal that a frame may have been lost in flight, as opposed to the
// connection being broken.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
