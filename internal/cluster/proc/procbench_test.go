package proc

// procbench_test.go measures the end-to-end effect of the raw columnar
// wire on real worker processes: Connected Components and PageRank
// jobs running with a per-superstep checkpoint (so bulk state crosses
// the wire every round), once with the default raw encoding and data
// plane, once with every payload kind forced back onto gob (which also
// reverts state migration to the monolithic ctrl RPC). BENCH_PR10.json
// derives the proc_e2e_speedup_* ratios from these four benchmarks.

import (
	"testing"
	"time"

	"optiflow/internal/checkpoint"
	"optiflow/internal/graph/gen"
	"optiflow/internal/iterate"
	"optiflow/internal/recovery"
)

// allGobPayloads routes every hot payload kind through the gob
// fallback, recreating the pre-PR-10 wire end to end.
var allGobPayloads = []string{PayloadStep, PayloadState, PayloadLoad, PayloadSnapshot}

// startBenchCluster boots a coordinator for a benchmark, outside the
// timed region. Benchmarks share the test binary's child-process
// re-exec hook, so worker processes are real.
func startBenchCluster(b *testing.B, workers, partitions int, gobPayloads []string) *Coordinator {
	b.Helper()
	co, err := Start(Config{
		Workers:     workers,
		Partitions:  partitions,
		Heartbeat:   50 * time.Millisecond,
		CallTimeout: 30 * time.Second,
		GobPayloads: gobPayloads,
	})
	if err != nil {
		b.Fatalf("Start: %v", err)
	}
	b.Cleanup(func() { co.Close() })
	return co
}

// benchProcCC runs Connected Components to the fixpoint with a
// checkpoint every superstep, so each round ships full partition state
// coordinator-ward over the wire under measurement.
func benchProcCC(b *testing.B, gobPayloads []string) {
	g := gen.Components(4, 2000, 0.002, 7)
	co := startBenchCluster(b, 3, 6, gobPayloads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job, err := NewJob(co, Spec{Name: "bench-cc", Kind: KindCC, Graph: g})
		if err != nil {
			b.Fatalf("NewJob: %v", err)
		}
		loop := &iterate.Loop{
			Name:    "bench-cc",
			Step:    job.Step,
			Done:    iterate.DeltaDone(job.WorksetLen),
			Job:     job,
			Policy:  recovery.NewCheckpoint(1, checkpoint.NewMemoryStore()),
			Cluster: co,
		}
		if _, err := loop.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
}

// benchProcPageRank runs a fixed number of PageRank supersteps on a
// scale-free graph, checkpointing every superstep.
func benchProcPageRank(b *testing.B, gobPayloads []string) {
	g := gen.Twitter(8000, 11)
	co := startBenchCluster(b, 3, 6, gobPayloads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job, err := NewJob(co, Spec{Name: "bench-pr", Kind: KindPageRank, Graph: g})
		if err != nil {
			b.Fatalf("NewJob: %v", err)
		}
		loop := &iterate.Loop{
			Name:    "bench-pr",
			Step:    job.Step,
			Done:    iterate.BulkDone(10, func(int) bool { return false }),
			Job:     job,
			Policy:  recovery.NewCheckpoint(1, checkpoint.NewMemoryStore()),
			Cluster: co,
		}
		if _, err := loop.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
}

func BenchmarkProcCC_Raw(b *testing.B)       { benchProcCC(b, nil) }
func BenchmarkProcCC_Gob(b *testing.B)       { benchProcCC(b, allGobPayloads) }
func BenchmarkProcPageRank_Raw(b *testing.B) { benchProcPageRank(b, nil) }
func BenchmarkProcPageRank_Gob(b *testing.B) { benchProcPageRank(b, allGobPayloads) }
