package proc

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	oexec "os/exec"
	"reflect"
	"testing"

	"optiflow/internal/checkpoint"
)

// sampleMessages returns one populated instance per wire type, in
// wireMessages order. Every field is non-zero where possible so the
// round trip exercises real payloads, not gob's zero-field elision.
// Map-typed fields hold a single entry so the %#v digest is stable.
func sampleMessages() []any {
	return []any{
		Hello{Proto: ProtoVersion, Worker: 3, Token: "tok", Conn: ConnCtrl},
		HelloOK{Proto: ProtoVersion},
		Heartbeat{Worker: 3, Seq: 41},
		OKResp{},
		ErrResp{Msg: "worker 3: boom"},
		PingReq{},
		LoadReq{
			Job: "cc-demo", Kind: KindCC, NumPartitions: 4, TotalVertices: 9, Damping: 0.85,
			Parts: []PartitionData{{Part: 2, Vertices: []VertexAdj{{ID: 7, Out: []uint64{1, 9}}}}},
		},
		StepReq{
			Superstep: 5, Rescatter: true, Dangling: 0.125,
			Inbox: []PartMsgs{{Part: 1, Msgs: []Msg{{Dst: 9, Label: 2, Rank: 0.5}}}},
		},
		StepResp{
			Outbox:   []PartMsgs{{Part: 0, Msgs: []Msg{{Dst: 1, Label: 1, Rank: 0.25}}}},
			Dangling: 0.0625, L1: 1.5, Folded: true, Messages: 12, Updates: 3,
		},
		CommitReq{Superstep: 5},
		AbortReq{},
		FetchReq{Parts: []int{0, 2}},
		FetchResp{Parts: []PartState{{Part: 2, Vertices: []VertexVal{{ID: 7, Label: 1, Rank: 0.2}}}}},
		RestoreReq{Parts: []PartState{{Part: 0, Vertices: []VertexVal{{ID: 1, Label: 1, Rank: 0.3}}}}},
		ClearReq{Parts: []int{3}},
		ResetReq{},
		ShutdownReq{},
		StatsReq{},
		WorkerStats{Handled: 17, Replayed: 2},
		JobSnapshot{
			Kind:     KindPageRank,
			Parts:    []PartState{{Part: 1, Vertices: []VertexVal{{ID: 4, Label: 4, Rank: 0.1}}}},
			Inbox:    []PartMsgs{{Part: 1, Msgs: []Msg{{Dst: 4, Rank: 0.05}}}},
			Dangling: 0.25, Rescatter: true,
		},
		checkpoint.CommitRecord{Epoch: 9, Superstep: 4, Parts: map[int]uint64{2: 9}, Compressed: true},
		DataFetchReq{Stream: 11, ChunkVerts: 4096, Parts: []int{0, 3}},
		DataRestoreReq{Stream: 12},
		DataChunk{
			Stream: 12, Seq: 2, Done: true,
			Parts: []PartState{{Part: 3, Vertices: []VertexVal{{ID: 8, Label: 2, Rank: 0.4}}}},
		},
		DataAck{Stream: 12},
		DataErr{Stream: 13, Msg: "worker 3: partition 9 not hosted"},
	}
}

// decodeInChild pipes the frame bytes into a freshly started
// subprocess decoder (this test binary re-executed with the gob-check
// env set — a fresh gob type registry and nothing shared with the
// encoder beyond the package init) and returns the child's per-frame
// %#v digests.
func decodeInChild(t *testing.T, frames []byte) []string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	cmd := oexec.Command(exe)
	cmd.Env = append(os.Environ(), envGobCheck+"=1")
	cmd.Stdin = bytes.NewReader(frames)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("gob-check child: %v (stderr: %s)", err, stderr.String())
	}
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var got []string
	for sc.Scan() {
		got = append(got, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading child output: %v", err)
	}
	return got
}

// checkChildRoundTrip encodes every sample under the given wire policy
// and compares the subprocess decoder's digests against the parent's
// rendering of what it sent.
func checkChildRoundTrip(t *testing.T, samples []any, wc *wireCfg) {
	t.Helper()
	var frames bytes.Buffer
	for _, m := range samples {
		if err := writeFrameCfg(&frames, 0, m, wc); err != nil {
			t.Fatalf("encoding %T: %v", m, err)
		}
	}
	got := decodeInChild(t, frames.Bytes())
	if len(got) != len(samples) {
		t.Fatalf("child decoded %d frames, want %d:\n%s", len(got), len(samples), got)
	}
	for i, m := range samples {
		if want := fmt.Sprintf("%#v", m); got[i] != want {
			t.Errorf("frame %d (%T) mutated across the process boundary:\n sent %s\n got  %s",
				i, m, want, got[i])
		}
	}
}

// TestGobWireCompatAcrossProcesses round-trips one populated sample of
// every wire type through a fresh subprocess decoder under the default
// policy — raw columnar for the hot-path kinds, gob for control frames.
// A type gob cannot carry across processes, a type missing from the
// registration list, or a raw codec asymmetry fails here instead of
// mid-superstep in production.
func TestGobWireCompatAcrossProcesses(t *testing.T) {
	samples := sampleMessages()
	wire := wireMessages()
	if len(samples) != len(wire) {
		t.Fatalf("sampleMessages has %d entries, wireMessages %d — keep the suites in lockstep",
			len(samples), len(wire))
	}
	for i := range samples {
		if got, want := reflect.TypeOf(samples[i]), reflect.TypeOf(wire[i]); got != want {
			t.Fatalf("sample %d is %v, wireMessages lists %v", i, got, want)
		}
	}
	checkChildRoundTrip(t, samples, defaultWire)
}

// TestGobFallbackWireCompatAcrossProcesses repeats the round trip with
// every payload kind forced onto the gob fallback, pinning that the
// fallback selectable via Config.GobPayloads stays cross-process
// decodable too.
func TestGobFallbackWireCompatAcrossProcesses(t *testing.T) {
	gobKinds, err := parseGobPayloads([]string{PayloadStep, PayloadState, PayloadLoad, PayloadSnapshot})
	if err != nil {
		t.Fatal(err)
	}
	checkChildRoundTrip(t, sampleMessages(), &wireCfg{gobKinds: gobKinds})
}
