package cluster

import (
	"errors"
	"fmt"
)

// Interface is the contract shared by every cluster backend: the
// in-process simulation (*Cluster, this package) and the multi-process
// TCP cluster (*proc.Coordinator, package cluster/proc). iterate.Loop,
// the recovery supervisor and every experiment are written against this
// interface so any cluster-facing test can run in both modes.
//
// Semantics every implementation must honour:
//
//   - Workers returns the sorted IDs of live workers; Owner/PartitionsOf
//     describe the current partition assignment.
//   - Fail(w) kills a live worker and returns the partitions it owned
//     (now lost); failing an unknown or dead worker returns nil. For a
//     process-backed cluster this is a real SIGKILL.
//   - Acquire/AcquireN provision replacements bounded by the spare pool
//     and the AcquireHook, spreading orphaned partitions round-robin.
//     Callers must check len(workers), not assume the requested count.
//   - Release decommissions a live worker cooperatively, moving its
//     partitions to survivors and returning the machine to the spare
//     pool. Double releases, never-acquired IDs, failed workers and the
//     last live worker are rejected with a *ReleaseError.
//   - AssignOrphans is the degraded-mode fallback when the pool is dry:
//     orphaned partitions are spread across survivors.
//   - Note/Events/DroppedEvents expose one ordered event history for
//     narration and tests.
type Interface interface {
	NumPartitions() int
	Workers() []int
	Owner(p int) int
	PartitionsOf(w int) []int
	IsAlive(w int) bool

	Spares() int
	AddSpares(n int)

	Fail(w int) []int
	Release(w int) error
	Acquire() (worker int, adopted []int)
	AcquireN(n int) (workers []int, adopted [][]int, err error)
	Orphaned() []int
	AssignOrphans() (map[int][]int, error)

	Note(kind EventKind, detail string, partitions []int)
	Events() []Event
	DroppedEvents() int
}

var _ Interface = (*Cluster)(nil)

// NetStats are a cluster backend's gray-failure counters: how often the
// RPC layer retried, how often a worker connection was re-established,
// and how far workers climbed the suspicion ladder. The in-process
// simulation has no network, so only backends that really exchange
// frames (cluster/proc) report non-zero values.
type NetStats struct {
	// RPCRetries counts ctrl-RPC attempts beyond the first.
	RPCRetries int
	// Reconnects counts broken ctrl/beat connections a worker
	// re-established within its grace window.
	Reconnects int
	// Suspected counts workers that entered the suspicion ladder
	// (missed beats or a broken connection).
	Suspected int
	// Condemned counts workers the ladder declared failed (grace
	// expired, retries exhausted, process reaped, or straggling).
	Condemned int
	// Fenced counts handshakes rejected because the dialing worker had
	// already been condemned or replaced — the zombie-write guard.
	Fenced int
}

// NetReporter is implemented by cluster backends that expose network
// fault counters. Probes type-assert for it; absence means the backend
// has no network to observe.
type NetReporter interface {
	NetStats() NetStats
}

// Release rejection reasons, carried inside *ReleaseError. Releasing is
// cooperative decommissioning, so only a currently-live worker
// qualifies; everything else used to be accepted silently (or with an
// untyped error), letting a buggy supervisor inflate the spare pool by
// releasing the same machine twice or "returning" a machine it never
// held.
var (
	// ErrUnknownWorker: the ID was never provisioned by this cluster.
	ErrUnknownWorker = errors.New("worker was never provisioned")
	// ErrDoubleRelease: the worker was already released; its machine is
	// back in the spare pool and cannot be returned a second time.
	ErrDoubleRelease = errors.New("worker already released")
	// ErrDeadWorker: the worker failed (crashed) rather than being
	// decommissioned; its machine is gone, not reusable as a spare.
	ErrDeadWorker = errors.New("worker failed, not released")
	// ErrLastWorker: releasing the last live worker would leave the
	// partitions with no host.
	ErrLastWorker = errors.New("cannot release the last live worker")
)

// ReleaseError is the typed rejection returned by Release. Match the
// cause with errors.Is against the Err* sentinels above.
type ReleaseError struct {
	Worker int
	Reason error
}

func (e *ReleaseError) Error() string {
	return fmt.Sprintf("cluster: cannot release worker %d: %v", e.Worker, e.Reason)
}

// Unwrap exposes the sentinel reason to errors.Is.
func (e *ReleaseError) Unwrap() error { return e.Reason }
