package cluster

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestRoundRobinOwnership(t *testing.T) {
	c := New(3, 7)
	if c.NumPartitions() != 7 {
		t.Fatalf("partitions = %d", c.NumPartitions())
	}
	if got := c.Workers(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("workers = %v", got)
	}
	if got := c.PartitionsOf(0); !reflect.DeepEqual(got, []int{0, 3, 6}) {
		t.Fatalf("partitions of 0 = %v", got)
	}
	if got := c.PartitionsOf(2); !reflect.DeepEqual(got, []int{2, 5}) {
		t.Fatalf("partitions of 2 = %v", got)
	}
	if c.Owner(4) != 1 {
		t.Fatalf("owner(4) = %d", c.Owner(4))
	}
}

func TestFailAndAcquire(t *testing.T) {
	c := New(2, 4)
	lost := c.Fail(1)
	if !reflect.DeepEqual(lost, []int{1, 3}) {
		t.Fatalf("lost = %v", lost)
	}
	if c.IsAlive(1) {
		t.Fatal("worker 1 still alive")
	}
	if got := c.Workers(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("workers = %v", got)
	}

	// A fresh worker adopts the orphans.
	w, adopted := c.Acquire()
	if w != 2 {
		t.Fatalf("new worker id = %d", w)
	}
	if !reflect.DeepEqual(adopted, []int{1, 3}) {
		t.Fatalf("adopted = %v", adopted)
	}
	if c.Owner(1) != 2 || c.Owner(3) != 2 {
		t.Fatal("ownership not transferred")
	}
	if got := c.Workers(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("workers = %v", got)
	}
}

func TestFailDeadWorkerIsNoop(t *testing.T) {
	c := New(2, 2)
	c.Fail(0)
	if lost := c.Fail(0); lost != nil {
		t.Fatalf("double fail returned %v", lost)
	}
	if lost := c.Fail(99); lost != nil {
		t.Fatalf("unknown worker fail returned %v", lost)
	}
}

func TestEventsLog(t *testing.T) {
	c := New(2, 2)
	c.Fail(0)
	c.Acquire()
	ev := c.Events()
	if len(ev) != 2 || ev[0].Kind != "fail" || ev[1].Kind != "acquire" {
		t.Fatalf("events = %+v", ev)
	}
	if ev[0].Worker != 0 || ev[1].Worker != 2 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestAllWorkersCanFailAndRecover(t *testing.T) {
	c := New(3, 6)
	for w := 0; w < 3; w++ {
		c.Fail(w)
	}
	if len(c.Workers()) != 0 {
		t.Fatal("workers should all be dead")
	}
	_, adopted := c.Acquire()
	if len(adopted) != 6 {
		t.Fatalf("fresh worker adopted %d partitions, want all 6", len(adopted))
	}
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct{ w, p int }{{0, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d, %d) should panic", tc.w, tc.p)
				}
			}()
			New(tc.w, tc.p)
		}()
	}
}

func TestAcquireNSpreadsOrphansRoundRobin(t *testing.T) {
	c := New(4, 8)
	lost := append(c.Fail(0), c.Fail(1)...)
	if len(lost) != 4 {
		t.Fatalf("lost = %v", lost)
	}
	workers, adopted, err := c.AcquireN(2)
	if err != nil {
		t.Fatalf("AcquireN: %v", err)
	}
	if len(workers) != 2 || workers[0] != 4 || workers[1] != 5 {
		t.Fatalf("workers = %v", workers)
	}
	// Orphans 0, 4 (ex-worker 0) and 1, 5 (ex-worker 1) alternate over
	// the two replacements in ascending partition order.
	if got := adopted[0]; len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("adopted[0] = %v", got)
	}
	if got := adopted[1]; len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("adopted[1] = %v", got)
	}
	if len(c.Workers()) != 4 {
		t.Fatalf("workers = %v", c.Workers())
	}
	for p := 0; p < 8; p++ {
		if !c.IsAlive(c.Owner(p)) {
			t.Fatalf("partition %d owned by dead worker %d", p, c.Owner(p))
		}
	}
}

func TestAcquireNRecordsOneEventPerWorker(t *testing.T) {
	c := New(2, 4)
	c.Fail(0)
	before := len(c.Events())
	c.AcquireN(3)
	acquires := c.Events()[before:]
	if len(acquires) != 3 {
		t.Fatalf("events = %+v", acquires)
	}
	for _, e := range acquires {
		if e.Kind != "acquire" {
			t.Fatalf("event = %+v", e)
		}
	}
}

func TestAcquireNClampsToOne(t *testing.T) {
	c := New(2, 2)
	c.Fail(1)
	workers, adopted, err := c.AcquireN(0)
	if err != nil {
		t.Fatalf("AcquireN: %v", err)
	}
	if len(workers) != 1 || len(adopted) != 1 {
		t.Fatalf("workers = %v adopted = %v", workers, adopted)
	}
	if len(adopted[0]) != 1 {
		t.Fatalf("adopted = %v", adopted)
	}
}

func TestAcquireNBoundedSpares(t *testing.T) {
	c := New(4, 8, WithSpares(1))
	if c.Spares() != 1 {
		t.Fatalf("spares = %d", c.Spares())
	}
	c.Fail(0)
	c.Fail(1)
	// Request exceeds the remaining pool: a partial grant, not an error.
	workers, adopted, err := c.AcquireN(2)
	if err != nil {
		t.Fatalf("AcquireN: %v", err)
	}
	if len(workers) != 1 || workers[0] != 4 {
		t.Fatalf("workers = %v", workers)
	}
	// The single replacement adopts every orphan of both dead workers.
	if len(adopted[0]) != 4 {
		t.Fatalf("adopted = %v", adopted)
	}
	if c.Spares() != 0 {
		t.Fatalf("spares = %d", c.Spares())
	}
	var denied *Event
	for i := range c.Events() {
		if c.Events()[i].Kind == EventAcquireDenied {
			denied = &c.Events()[i]
		}
	}
	if denied == nil {
		t.Fatalf("no acquire-denied event in %+v", c.Events())
	}
}

func TestAcquireNZeroSpares(t *testing.T) {
	c := New(2, 4, WithSpares(0))
	c.Fail(1)
	workers, adopted, err := c.AcquireN(1)
	if err != nil {
		t.Fatalf("AcquireN: %v", err)
	}
	if len(workers) != 0 || len(adopted) != 0 {
		t.Fatalf("workers = %v adopted = %v", workers, adopted)
	}
	if got := c.Orphaned(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("orphaned = %v", got)
	}
	// Acquire wrapper stays safe on an empty grant.
	if w, ad := c.Acquire(); w != -1 || ad != nil {
		t.Fatalf("Acquire = %d, %v", w, ad)
	}
	// Degraded mode: survivors adopt the orphans.
	moved, err := c.AssignOrphans()
	if err != nil {
		t.Fatalf("AssignOrphans: %v", err)
	}
	if !reflect.DeepEqual(moved[0], []int{1, 3}) {
		t.Fatalf("moved = %v", moved)
	}
	if len(c.Orphaned()) != 0 {
		t.Fatalf("orphaned = %v", c.Orphaned())
	}
}

func TestReleaseReturnsWorkerToPool(t *testing.T) {
	c := New(3, 6, WithSpares(0))
	if err := c.Release(2); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if c.Spares() != 1 {
		t.Fatalf("spares = %d", c.Spares())
	}
	// Cooperative release loses nothing: every partition stays owned by
	// a live worker.
	for p := 0; p < 6; p++ {
		if !c.IsAlive(c.Owner(p)) {
			t.Fatalf("partition %d orphaned by Release", p)
		}
	}
	// Re-acquisition after the release succeeds using the returned spare.
	c.Fail(1)
	workers, _, err := c.AcquireN(1)
	if err != nil || len(workers) != 1 {
		t.Fatalf("AcquireN after release = %v, %v", workers, err)
	}
	if c.Spares() != 0 {
		t.Fatalf("spares = %d", c.Spares())
	}
	// Errors: releasing a dead worker, releasing the last worker.
	if err := c.Release(1); err == nil {
		t.Fatal("releasing dead worker should fail")
	}
	c2 := New(1, 2)
	if err := c2.Release(0); err == nil {
		t.Fatal("releasing the last worker should fail")
	}
}

func TestAddSparesReplenishesPool(t *testing.T) {
	c := New(2, 4, WithSpares(0))
	c.Fail(0)
	if ws, _, _ := c.AcquireN(1); len(ws) != 0 {
		t.Fatalf("workers = %v", ws)
	}
	c.AddSpares(2)
	if c.Spares() != 2 {
		t.Fatalf("spares = %d", c.Spares())
	}
	ws, adopted, err := c.AcquireN(1)
	if err != nil || len(ws) != 1 {
		t.Fatalf("AcquireN = %v, %v", ws, err)
	}
	if !reflect.DeepEqual(adopted[0], []int{0, 2}) {
		t.Fatalf("adopted = %v", adopted)
	}
	found := false
	for _, e := range c.Events() {
		if e.Kind == EventReplenish {
			found = true
		}
	}
	if !found {
		t.Fatalf("no replenish event in %+v", c.Events())
	}
}

func TestAcquireHookLatencyAndFailure(t *testing.T) {
	calls := 0
	hook := func(seq, worker int) (time.Duration, error) {
		calls++
		if seq == 2 {
			return 0, errors.New("provisioning timed out")
		}
		return time.Duration(seq) * time.Millisecond, nil
	}
	c := New(2, 4, WithAcquireHook(hook))
	c.Fail(0)
	c.Fail(1)
	workers, adopted, err := c.AcquireN(3)
	if err == nil {
		t.Fatal("expected hook error")
	}
	if calls != 2 {
		t.Fatalf("hook calls = %d", calls)
	}
	// The worker acquired before the failure still joined and adopted
	// every orphan.
	if len(workers) != 1 || workers[0] != 2 {
		t.Fatalf("workers = %v", workers)
	}
	if len(adopted[0]) != 4 {
		t.Fatalf("adopted = %v", adopted)
	}
	var acq, failed bool
	for _, e := range c.Events() {
		switch e.Kind {
		case EventAcquire:
			if e.Latency != time.Millisecond {
				t.Fatalf("latency = %v", e.Latency)
			}
			acq = true
		case EventAcquireFailed:
			failed = true
		}
	}
	if !acq || !failed {
		t.Fatalf("events = %+v", c.Events())
	}
}

func TestEventCapRingBuffer(t *testing.T) {
	c := New(2, 4, WithEventCap(3))
	for i := 0; i < 5; i++ {
		c.Note(EventRetry, "note", nil)
	}
	ev := c.Events()
	if len(ev) != 3 {
		t.Fatalf("events = %d", len(ev))
	}
	if c.DroppedEvents() != 2 {
		t.Fatalf("dropped = %d", c.DroppedEvents())
	}
	// Uncapped clusters never drop.
	c2 := New(2, 4)
	for i := 0; i < 100; i++ {
		c2.Note(EventRetry, "note", nil)
	}
	if len(c2.Events()) != 100 || c2.DroppedEvents() != 0 {
		t.Fatalf("events = %d dropped = %d", len(c2.Events()), c2.DroppedEvents())
	}
}
