package cluster

import (
	"reflect"
	"testing"
)

func TestRoundRobinOwnership(t *testing.T) {
	c := New(3, 7)
	if c.NumPartitions() != 7 {
		t.Fatalf("partitions = %d", c.NumPartitions())
	}
	if got := c.Workers(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("workers = %v", got)
	}
	if got := c.PartitionsOf(0); !reflect.DeepEqual(got, []int{0, 3, 6}) {
		t.Fatalf("partitions of 0 = %v", got)
	}
	if got := c.PartitionsOf(2); !reflect.DeepEqual(got, []int{2, 5}) {
		t.Fatalf("partitions of 2 = %v", got)
	}
	if c.Owner(4) != 1 {
		t.Fatalf("owner(4) = %d", c.Owner(4))
	}
}

func TestFailAndAcquire(t *testing.T) {
	c := New(2, 4)
	lost := c.Fail(1)
	if !reflect.DeepEqual(lost, []int{1, 3}) {
		t.Fatalf("lost = %v", lost)
	}
	if c.IsAlive(1) {
		t.Fatal("worker 1 still alive")
	}
	if got := c.Workers(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("workers = %v", got)
	}

	// A fresh worker adopts the orphans.
	w, adopted := c.Acquire()
	if w != 2 {
		t.Fatalf("new worker id = %d", w)
	}
	if !reflect.DeepEqual(adopted, []int{1, 3}) {
		t.Fatalf("adopted = %v", adopted)
	}
	if c.Owner(1) != 2 || c.Owner(3) != 2 {
		t.Fatal("ownership not transferred")
	}
	if got := c.Workers(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("workers = %v", got)
	}
}

func TestFailDeadWorkerIsNoop(t *testing.T) {
	c := New(2, 2)
	c.Fail(0)
	if lost := c.Fail(0); lost != nil {
		t.Fatalf("double fail returned %v", lost)
	}
	if lost := c.Fail(99); lost != nil {
		t.Fatalf("unknown worker fail returned %v", lost)
	}
}

func TestEventsLog(t *testing.T) {
	c := New(2, 2)
	c.Fail(0)
	c.Acquire()
	ev := c.Events()
	if len(ev) != 2 || ev[0].Kind != "fail" || ev[1].Kind != "acquire" {
		t.Fatalf("events = %+v", ev)
	}
	if ev[0].Worker != 0 || ev[1].Worker != 2 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestAllWorkersCanFailAndRecover(t *testing.T) {
	c := New(3, 6)
	for w := 0; w < 3; w++ {
		c.Fail(w)
	}
	if len(c.Workers()) != 0 {
		t.Fatal("workers should all be dead")
	}
	_, adopted := c.Acquire()
	if len(adopted) != 6 {
		t.Fatalf("fresh worker adopted %d partitions, want all 6", len(adopted))
	}
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct{ w, p int }{{0, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d, %d) should panic", tc.w, tc.p)
				}
			}()
			New(tc.w, tc.p)
		}()
	}
}

func TestAcquireNSpreadsOrphansRoundRobin(t *testing.T) {
	c := New(4, 8)
	lost := append(c.Fail(0), c.Fail(1)...)
	if len(lost) != 4 {
		t.Fatalf("lost = %v", lost)
	}
	workers, adopted := c.AcquireN(2)
	if len(workers) != 2 || workers[0] != 4 || workers[1] != 5 {
		t.Fatalf("workers = %v", workers)
	}
	// Orphans 0, 4 (ex-worker 0) and 1, 5 (ex-worker 1) alternate over
	// the two replacements in ascending partition order.
	if got := adopted[0]; len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("adopted[0] = %v", got)
	}
	if got := adopted[1]; len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("adopted[1] = %v", got)
	}
	if len(c.Workers()) != 4 {
		t.Fatalf("workers = %v", c.Workers())
	}
	for p := 0; p < 8; p++ {
		if !c.IsAlive(c.Owner(p)) {
			t.Fatalf("partition %d owned by dead worker %d", p, c.Owner(p))
		}
	}
}

func TestAcquireNRecordsOneEventPerWorker(t *testing.T) {
	c := New(2, 4)
	c.Fail(0)
	before := len(c.Events())
	c.AcquireN(3)
	acquires := c.Events()[before:]
	if len(acquires) != 3 {
		t.Fatalf("events = %+v", acquires)
	}
	for _, e := range acquires {
		if e.Kind != "acquire" {
			t.Fatalf("event = %+v", e)
		}
	}
}

func TestAcquireNClampsToOne(t *testing.T) {
	c := New(2, 2)
	c.Fail(1)
	workers, adopted := c.AcquireN(0)
	if len(workers) != 1 || len(adopted) != 1 {
		t.Fatalf("workers = %v adopted = %v", workers, adopted)
	}
	if len(adopted[0]) != 1 {
		t.Fatalf("adopted = %v", adopted)
	}
}
