package state

import (
	"encoding/gob"
	"fmt"
	"io"
)

// ColWorkset is the columnar counterpart of Workset: each partition's
// pending updates are two parallel append-only columns — the dense
// vertex index of the update's target and its numeric payload — so the
// columnar superstep source streams them without per-item boxing.
// Snapshot captures alias the column backing arrays exactly like
// Workset.SnapshotShared (append-only between clears makes that safe),
// and checkpoint encoders write the columns directly.
type ColWorkset[V any] struct {
	name     string
	idx      [][]int32
	val      [][]V
	versions []uint64
}

// colPart is the serialised form of one columnar workset partition.
type colPart[V any] struct {
	Idx []int32
	Val []V
}

// NewColWorkset creates an empty columnar workset with nparts
// partitions.
func NewColWorkset[V any](name string, nparts int) *ColWorkset[V] {
	if nparts < 1 {
		panic(fmt.Sprintf("state: workset %q: nparts must be >= 1, got %d", name, nparts))
	}
	return &ColWorkset[V]{
		name:     name,
		idx:      make([][]int32, nparts),
		val:      make([][]V, nparts),
		versions: make([]uint64, nparts),
	}
}

// Name returns the workset's name.
func (w *ColWorkset[V]) Name() string { return w.name }

// NumPartitions returns the partition count.
func (w *ColWorkset[V]) NumPartitions() int { return len(w.idx) }

// Add appends one update to partition p. Each fold task appends only to
// its own partition, so no locking is required.
func (w *ColWorkset[V]) Add(p int, idx int32, val V) {
	w.idx[p] = append(w.idx[p], idx)
	w.val[p] = append(w.val[p], val)
	w.bump(p)
}

// Len returns the total number of updates.
func (w *ColWorkset[V]) Len() int {
	n := 0
	for _, c := range w.idx {
		n += len(c)
	}
	return n
}

// PartitionLen returns the number of updates in partition p.
func (w *ColWorkset[V]) PartitionLen(p int) int { return len(w.idx[p]) }

// Cols returns partition p's columns; the caller must not modify them.
func (w *ColWorkset[V]) Cols(p int) ([]int32, []V) { return w.idx[p], w.val[p] }

// ClearAll empties every partition.
func (w *ColWorkset[V]) ClearAll() {
	for p := range w.idx {
		w.ClearPartition(p)
	}
}

// ClearPartition empties partition p (the crash of its owner).
func (w *ColWorkset[V]) ClearPartition(p int) {
	w.idx[p] = nil
	w.val[p] = nil
	w.bump(p)
}

// Version returns the change counter of partition p.
func (w *ColWorkset[V]) Version(p int) uint64 { return w.versions[p] }

func (w *ColWorkset[V]) bump(p int) { w.versions[p]++ }

// Swap exchanges the contents of two worksets (current vs next). A
// partition empty on both sides keeps its version, mirroring
// Workset.Swap.
func (w *ColWorkset[V]) Swap(other *ColWorkset[V]) {
	for p := range w.idx {
		if len(w.idx[p]) != 0 || len(other.idx[p]) != 0 {
			w.bump(p)
			other.bump(p)
		}
	}
	w.idx, other.idx = other.idx, w.idx
	w.val, other.val = other.val, w.val
}

// Snapshot returns a deep copy of the workset.
func (w *ColWorkset[V]) Snapshot() *ColWorkset[V] {
	c := NewColWorkset[V](w.name, len(w.idx))
	for p := range w.idx {
		c.idx[p] = append([]int32(nil), w.idx[p]...)
		c.val[p] = append([]V(nil), w.val[p]...)
	}
	return c
}

// SnapshotShared returns an O(parts) capture sharing the column backing
// arrays, safe because partitions are append-only between clears (see
// Workset.SnapshotShared).
func (w *ColWorkset[V]) SnapshotShared() *ColWorkset[V] {
	c := &ColWorkset[V]{
		name:     w.name,
		idx:      make([][]int32, len(w.idx)),
		val:      make([][]V, len(w.val)),
		versions: append([]uint64(nil), w.versions...),
	}
	for p := range w.idx {
		c.idx[p] = w.idx[p][:len(w.idx[p]):len(w.idx[p])]
		c.val[p] = w.val[p][:len(w.val[p]):len(w.val[p])]
	}
	return c
}

// CopyFrom replaces the workset contents with those of other.
func (w *ColWorkset[V]) CopyFrom(other *ColWorkset[V]) {
	if len(w.idx) != len(other.idx) {
		panic(fmt.Sprintf("state: CopyFrom: partition count mismatch %d != %d", len(w.idx), len(other.idx)))
	}
	for p := range w.idx {
		w.idx[p] = append([]int32(nil), other.idx[p]...)
		w.val[p] = append([]V(nil), other.val[p]...)
		w.bump(p)
	}
}

// Encode writes the workset to wr in gob encoding.
func (w *ColWorkset[V]) Encode(wr io.Writer) error {
	return w.EncodeTo(gob.NewEncoder(wr))
}

// EncodeTo appends the workset to an existing gob stream. Columns are
// encoded as-is: append order is deterministic (fold tasks emit in
// ascending destination order per superstep), so equal histories encode
// to identical bytes.
func (w *ColWorkset[V]) EncodeTo(enc *gob.Encoder) error {
	if err := enc.Encode(w.name); err != nil {
		return fmt.Errorf("state: encoding workset %q: %v", w.name, err)
	}
	parts := make([]colPart[V], len(w.idx))
	for p := range w.idx {
		parts[p] = colPart[V]{Idx: w.idx[p], Val: w.val[p]}
	}
	if err := enc.Encode(parts); err != nil {
		return fmt.Errorf("state: encoding workset %q: %v", w.name, err)
	}
	return nil
}

// Decode replaces the workset contents from a gob stream.
func (w *ColWorkset[V]) Decode(r io.Reader) error {
	return w.DecodeFrom(gob.NewDecoder(r))
}

// DecodeFrom reads the workset from an existing gob stream.
func (w *ColWorkset[V]) DecodeFrom(dec *gob.Decoder) error {
	var name string
	if err := dec.Decode(&name); err != nil {
		return fmt.Errorf("state: decoding workset: %v", err)
	}
	if name != w.name {
		return fmt.Errorf("state: decoding workset: snapshot is of %q, want %q", name, w.name)
	}
	var parts []colPart[V]
	if err := dec.Decode(&parts); err != nil {
		return fmt.Errorf("state: decoding workset %q: %v", w.name, err)
	}
	if len(parts) != len(w.idx) {
		return fmt.Errorf("state: decoding workset %q: snapshot has %d partitions, workset has %d",
			w.name, len(parts), len(w.idx))
	}
	for p := range parts {
		w.idx[p] = parts[p].Idx
		w.val[p] = parts[p].Val
		w.bump(p)
	}
	return nil
}

// EncodePartition appends one workset partition to a gob stream.
func (w *ColWorkset[V]) EncodePartition(p int, enc *gob.Encoder) error {
	if err := enc.Encode(colPart[V]{Idx: w.idx[p], Val: w.val[p]}); err != nil {
		return fmt.Errorf("state: encoding workset %q partition %d: %v", w.name, p, err)
	}
	return nil
}

// DecodePartition replaces one workset partition from a gob stream
// written by EncodePartition.
func (w *ColWorkset[V]) DecodePartition(p int, dec *gob.Decoder) error {
	var part colPart[V]
	if err := dec.Decode(&part); err != nil {
		return fmt.Errorf("state: decoding workset %q partition %d: %v", w.name, p, err)
	}
	w.idx[p] = part.Idx
	w.val[p] = part.Val
	w.bump(p)
	return nil
}
