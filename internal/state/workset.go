package state

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Workset holds the update stream of a delta iteration, partitioned by
// the key of each item. The delta iteration consumes the workset at
// every superstep and produces the next one; the iteration terminates
// once the workset is empty (§2.1).
type Workset[T any] struct {
	name     string
	parts    [][]T
	versions []uint64 // per-partition change counters (see Version)
}

// NewWorkset creates an empty workset with nparts partitions.
func NewWorkset[T any](name string, nparts int) *Workset[T] {
	if nparts < 1 {
		panic(fmt.Sprintf("state: workset %q: nparts must be >= 1, got %d", name, nparts))
	}
	return &Workset[T]{name: name, parts: make([][]T, nparts), versions: make([]uint64, nparts)}
}

// Name returns the workset's name.
func (w *Workset[T]) Name() string { return w.name }

// NumPartitions returns the partition count.
func (w *Workset[T]) NumPartitions() int { return len(w.parts) }

// Add appends an item to partition p. Each dataflow sink task appends
// only to its own partition, so no locking is required.
func (w *Workset[T]) Add(p int, item T) {
	w.parts[p] = append(w.parts[p], item)
	w.bump(p)
}

// Len returns the total number of items.
func (w *Workset[T]) Len() int {
	n := 0
	for _, p := range w.parts {
		n += len(p)
	}
	return n
}

// PartitionLen returns the number of items in partition p.
func (w *Workset[T]) PartitionLen(p int) int { return len(w.parts[p]) }

// Items returns partition p's items; the caller must not modify them.
func (w *Workset[T]) Items(p int) []T { return w.parts[p] }

// ClearAll empties every partition.
func (w *Workset[T]) ClearAll() {
	for p := range w.parts {
		w.ClearPartition(p)
	}
}

// ClearPartition empties partition p (the crash of its owner).
func (w *Workset[T]) ClearPartition(p int) {
	w.parts[p] = nil
	w.bump(p)
}

// Swap exchanges the contents of two worksets (current vs next). A
// partition that is empty on both sides is unchanged by the swap, so
// its version is not bumped — this keeps incremental checkpoints from
// re-writing the workset partitions of long-converged vertices.
func (w *Workset[T]) Swap(other *Workset[T]) {
	for p := range w.parts {
		if len(w.parts[p]) != 0 || len(other.parts[p]) != 0 {
			w.bump(p)
			other.bump(p)
		}
	}
	w.parts, other.parts = other.parts, w.parts
}

// Snapshot returns a copy of the workset (items copied by assignment).
func (w *Workset[T]) Snapshot() *Workset[T] {
	c := NewWorkset[T](w.name, len(w.parts))
	for p, items := range w.parts {
		c.parts[p] = append([]T(nil), items...)
	}
	return c
}

// SnapshotShared returns an O(parts) capture of the workset that shares
// the item backing arrays with the live workset. This is safe without
// copy-on-write because partitions are append-only between clears: a
// later Add writes beyond the captured length (invisible to the capture
// view), and ClearPartition/Swap replace the live slice header without
// touching the captured one.
func (w *Workset[T]) SnapshotShared() *Workset[T] {
	c := &Workset[T]{
		name:     w.name,
		parts:    make([][]T, len(w.parts)),
		versions: append([]uint64(nil), w.versions...),
	}
	for p, items := range w.parts {
		c.parts[p] = items[:len(items):len(items)]
	}
	return c
}

// CopyFrom replaces the workset contents with those of other.
func (w *Workset[T]) CopyFrom(other *Workset[T]) {
	if len(w.parts) != len(other.parts) {
		panic(fmt.Sprintf("state: CopyFrom: partition count mismatch %d != %d", len(w.parts), len(other.parts)))
	}
	for p := range w.parts {
		w.parts[p] = append([]T(nil), other.parts[p]...)
		w.bump(p)
	}
}

// Encode writes the workset to w in gob encoding.
func (w *Workset[T]) Encode(wr io.Writer) error {
	return w.EncodeTo(gob.NewEncoder(wr))
}

// EncodeTo appends the workset to an existing gob stream.
func (w *Workset[T]) EncodeTo(enc *gob.Encoder) error {
	if err := enc.Encode(w.name); err != nil {
		return fmt.Errorf("state: encoding workset %q: %v", w.name, err)
	}
	if err := enc.Encode(w.parts); err != nil {
		return fmt.Errorf("state: encoding workset %q: %v", w.name, err)
	}
	return nil
}

// Decode replaces the workset contents from a gob stream.
func (w *Workset[T]) Decode(r io.Reader) error {
	return w.DecodeFrom(gob.NewDecoder(r))
}

// DecodeFrom reads the workset from an existing gob stream
// (counterpart of EncodeTo).
func (w *Workset[T]) DecodeFrom(dec *gob.Decoder) error {
	var name string
	if err := dec.Decode(&name); err != nil {
		return fmt.Errorf("state: decoding workset: %v", err)
	}
	if name != w.name {
		return fmt.Errorf("state: decoding workset: snapshot is of %q, want %q", name, w.name)
	}
	var parts [][]T
	if err := dec.Decode(&parts); err != nil {
		return fmt.Errorf("state: decoding workset %q: %v", w.name, err)
	}
	if len(parts) != len(w.parts) {
		return fmt.Errorf("state: decoding workset %q: snapshot has %d partitions, workset has %d",
			w.name, len(parts), len(w.parts))
	}
	w.parts = parts
	for p := range w.parts {
		w.bump(p)
	}
	return nil
}
