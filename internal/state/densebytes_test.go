package state

import (
	"strings"
	"testing"

	"optiflow/internal/colbytes"
	"optiflow/internal/graph"
)

// byteViewStore builds a small dense store over a 12-vertex graph
// split across 3 partitions, with a sparse fill (every third vertex).
func byteViewStore(t *testing.T) *DenseStore[uint64] {
	t.Helper()
	b := graph.NewBuilder(true)
	for v := 0; v < 12; v++ {
		b.AddVertex(graph.VertexID(v))
	}
	d := b.Build().Dense()
	pt := d.Partitioning(3)
	s := NewDenseStore[uint64]("labels", d, pt)
	for v := uint64(0); v < 12; v += 3 {
		s.Put(v, v*10)
	}
	return s
}

func TestPartitionByteViewRoundTrip(t *testing.T) {
	src := byteViewStore(t)
	dst := NewDenseStore[uint64]("labels", src.d, src.pt)
	for p := 0; p < src.NumPartitions(); p++ {
		view := src.AppendPartitionBytes(nil, p, colbytes.AppendU64)
		ver := dst.Version(p)
		if err := dst.RestorePartitionBytes(p, colbytes.NewReader(view), (*colbytes.Reader).U64); err != nil {
			t.Fatalf("partition %d: %v", p, err)
		}
		if dst.Version(p) == ver {
			t.Errorf("partition %d: restore did not bump the version", p)
		}
	}
	if dst.Len() != src.Len() {
		t.Fatalf("restored %d entries, want %d", dst.Len(), src.Len())
	}
	src.Range(func(k uint64, v uint64) bool {
		got, ok := dst.Get(k)
		if !ok || got != v {
			t.Errorf("key %d: got (%d, %v), want (%d, true)", k, got, ok, v)
		}
		return true
	})
	// Determinism: equal contents => byte-identical views.
	for p := 0; p < src.NumPartitions(); p++ {
		a := src.AppendPartitionBytes(nil, p, colbytes.AppendU64)
		b := dst.AppendPartitionBytes(nil, p, colbytes.AppendU64)
		if string(a) != string(b) {
			t.Errorf("partition %d: views differ after round-trip", p)
		}
	}
}

// TestPartitionByteViewTruncation pins the no-half-apply property: a
// view cut at any byte boundary must fail and leave the target store
// untouched.
func TestPartitionByteViewTruncation(t *testing.T) {
	src := byteViewStore(t)
	view := src.AppendPartitionBytes(nil, 0, colbytes.AppendU64)
	for cut := 0; cut < len(view); cut++ {
		dst := NewDenseStore[uint64]("labels", src.d, src.pt)
		dst.Put(0, 999) // pre-existing entry that must survive a failed restore
		if err := dst.RestorePartitionBytes(0, colbytes.NewReader(view[:cut]), (*colbytes.Reader).U64); err == nil {
			t.Fatalf("cut at %d: restore succeeded on a truncated view", cut)
		}
		if got, ok := dst.Get(0); !ok || got != 999 {
			t.Fatalf("cut at %d: failed restore modified the store", cut)
		}
	}
}

func TestPartitionByteViewWrongPartition(t *testing.T) {
	src := byteViewStore(t)
	// Partition sizes differ (12 vertices over 3 partitions is even,
	// so misroute to a store with a different partitioning instead).
	b := graph.NewBuilder(true)
	for v := 0; v < 12; v++ {
		b.AddVertex(graph.VertexID(v))
	}
	d := b.Build().Dense()
	other := NewDenseStore[uint64]("labels", d, d.Partitioning(2))
	view := src.AppendPartitionBytes(nil, 0, colbytes.AppendU64)
	err := other.RestorePartitionBytes(0, colbytes.NewReader(view), (*colbytes.Reader).U64)
	if err == nil || !strings.Contains(err.Error(), "slots") {
		t.Fatalf("misrouted view: err = %v, want slot-count mismatch", err)
	}
}

// TestPartitionByteViewCOW pins the snapshot-isolation property:
// restoring into a store after SnapshotShared must not be visible
// through the capture.
func TestPartitionByteViewCOW(t *testing.T) {
	src := byteViewStore(t)
	empty := NewDenseStore[uint64]("labels", src.d, src.pt)
	cap0 := empty.SnapshotShared()
	view := src.AppendPartitionBytes(nil, 0, colbytes.AppendU64)
	if err := empty.RestorePartitionBytes(0, colbytes.NewReader(view), (*colbytes.Reader).U64); err != nil {
		t.Fatal(err)
	}
	if cap0.Len() != 0 {
		t.Fatalf("restore leaked %d entries into a shared capture", cap0.Len())
	}
}
