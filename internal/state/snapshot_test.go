package state

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// The async checkpoint pipeline captures state with SnapshotShared at
// the superstep barrier and encodes it on background goroutines while
// the live store keeps mutating. The copy-on-write contract: the
// capture is immutable, and the live side pays for a partition clone
// only on its first post-capture write to that partition.

func TestSnapshotSharedIsImmutable(t *testing.T) {
	s := NewStore[uint64]("labels", 4)
	for k := uint64(0); k < 40; k++ {
		s.Put(k, k*10)
	}
	snap := s.SnapshotShared()

	s.Put(3, 999)  // overwrite
	s.Delete(5)    // delete
	s.Put(1000, 1) // insert
	s.ClearPartition(2)

	if v, ok := snap.Get(3); !ok || v != 30 {
		t.Fatalf("snapshot saw overwrite: %d %v", v, ok)
	}
	if v, ok := snap.Get(5); !ok || v != 50 {
		t.Fatalf("snapshot saw delete: %d %v", v, ok)
	}
	if _, ok := snap.Get(1000); ok {
		t.Fatal("snapshot saw insert")
	}
	if snap.Len() != 40 {
		t.Fatalf("snapshot len = %d", snap.Len())
	}
	// The live store sees all its own mutations.
	if v, _ := s.Get(3); v != 999 {
		t.Fatalf("live overwrite lost: %d", v)
	}
	if _, ok := s.Get(5); ok {
		t.Fatal("live delete lost")
	}
}

func TestSnapshotSharedChainsAndReverseProtection(t *testing.T) {
	s := NewStore[uint64]("labels", 2)
	s.Put(1, 1)
	// Two captures of the same state may alias the same maps; writing
	// through either snapshot (restores do) must not corrupt the other
	// or the live store.
	a := s.SnapshotShared()
	b := s.SnapshotShared()
	a.Put(1, 100)
	if v, _ := b.Get(1); v != 1 {
		t.Fatalf("write through snapshot a leaked into b: %d", v)
	}
	if v, _ := s.Get(1); v != 1 {
		t.Fatalf("write through snapshot a leaked into live store: %d", v)
	}
}

func TestSnapshotSharedApplyDeltaUnshares(t *testing.T) {
	src := NewStore[uint64]("labels", 2)
	src.Put(2, 22)
	var buf bytes.Buffer
	if err := src.EncodeDelta(gob.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}

	s := NewStore[uint64]("labels", 2)
	s.Put(1, 1)
	snap := s.SnapshotShared()
	if err := s.ApplyDelta(gob.NewDecoder(&buf)); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Get(2); ok {
		t.Fatal("snapshot saw ApplyDelta upsert")
	}
	if v, _ := s.Get(2); v != 22 {
		t.Fatal("delta lost on live store")
	}
}

// Regression test for a snapshotwrite (deepvet) finding: ApplyDelta's
// cleared-partition replay used to write through the live partition
// map without unsharing it first, so a capture taken at the barrier
// could observe the replayed contents. The replacement map is now
// built privately and published wholesale.
func TestSnapshotSharedApplyClearedDelta(t *testing.T) {
	src := NewStore[uint64]("labels", 2)
	src.Put(1, 11)
	src.Put(2, 22)
	src.MarkClean()
	src.ClearAll() // the next delta carries Cleared partitions
	src.Put(3, 33)
	var buf bytes.Buffer
	if err := src.EncodeDelta(gob.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}

	s := NewStore[uint64]("labels", 2)
	s.Put(1, 1)
	s.Put(2, 2)
	snap := s.SnapshotShared()
	if err := s.ApplyDelta(gob.NewDecoder(&buf)); err != nil {
		t.Fatal(err)
	}

	// The capture still shows barrier-time contents.
	if v, ok := snap.Get(1); !ok || v != 1 {
		t.Fatalf("snapshot lost key 1: %d %v", v, ok)
	}
	if v, ok := snap.Get(2); !ok || v != 2 {
		t.Fatalf("snapshot lost key 2: %d %v", v, ok)
	}
	if _, ok := snap.Get(3); ok {
		t.Fatal("snapshot saw cleared-delta replay")
	}
	// The live store is exactly the source's post-clear state.
	if _, ok := s.Get(1); ok {
		t.Fatal("cleared-delta replay kept stale key 1")
	}
	if v, _ := s.Get(3); v != 33 {
		t.Fatalf("cleared-delta replay lost upsert: %d", v)
	}
	if s.Len() != 1 {
		t.Fatalf("live len = %d, want 1", s.Len())
	}
}

// The empty-delta path of the same fix: replaying a no-change delta
// onto shared partitions must leave the sharing intact (a later write
// still clones before mutating) while still bumping the partition
// versions, since a restore invalidates incremental-snapshot bases.
func TestSnapshotSharedApplyEmptyDelta(t *testing.T) {
	src := NewStore[uint64]("labels", 2)
	var buf bytes.Buffer
	if err := src.EncodeDelta(gob.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}

	s := NewStore[uint64]("labels", 2)
	s.Put(1, 1)
	snap := s.SnapshotShared()
	v0, v1 := s.Version(0), s.Version(1)
	if err := s.ApplyDelta(gob.NewDecoder(&buf)); err != nil {
		t.Fatal(err)
	}
	if s.Version(0) == v0 || s.Version(1) == v1 {
		t.Fatal("empty delta did not bump partition versions")
	}
	s.Put(1, 100) // must copy-on-write, not mutate the aliased map
	if v, _ := snap.Get(1); v != 1 {
		t.Fatalf("post-delta write leaked into the capture: %d", v)
	}
	if v, _ := s.Get(1); v != 100 {
		t.Fatalf("live write lost: %d", v)
	}
}

// Deterministic encoding: the same logical content encodes to the same
// bytes regardless of insertion order (maps are encoded as sorted
// pairs). The sync-vs-async byte-identical restore guarantee depends on
// this.
func TestEncodePartitionDeterministic(t *testing.T) {
	a := NewStore[uint64]("labels", 2)
	b := NewStore[uint64]("labels", 2)
	keys := []uint64{8, 2, 14, 4, 100, 6, 12, 0}
	for _, k := range keys {
		a.Put(k, k)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Put(keys[i], keys[i])
	}
	for p := 0; p < 2; p++ {
		var ba, bb bytes.Buffer
		if err := a.EncodePartition(p, gob.NewEncoder(&ba)); err != nil {
			t.Fatal(err)
		}
		if err := b.EncodePartition(p, gob.NewEncoder(&bb)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
			t.Fatalf("partition %d encoding depends on insertion order", p)
		}
	}
	var ba, bb bytes.Buffer
	if err := a.Encode(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("full-store encoding depends on insertion order")
	}
}

// A capture's bytes must equal what a synchronous snapshot at the same
// barrier would have written, even when encoded after further
// mutations.
func TestSnapshotSharedEncodesBarrierState(t *testing.T) {
	s := NewStore[uint64]("labels", 2)
	for k := uint64(0); k < 20; k++ {
		s.Put(k, k)
	}
	var want bytes.Buffer
	if err := s.EncodePartition(0, gob.NewEncoder(&want)); err != nil {
		t.Fatal(err)
	}
	snap := s.SnapshotShared()
	for k := uint64(0); k < 20; k++ {
		s.Put(k, k+1000) // the next superstep overwrites everything
	}
	var got bytes.Buffer
	if err := snap.EncodePartition(0, gob.NewEncoder(&got)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("capture bytes differ from the barrier-time encoding")
	}
}

func TestWorksetSnapshotSharedIsImmutable(t *testing.T) {
	w := NewWorkset[uint64]("tasks", 2)
	w.Add(0, 1)
	w.Add(0, 2)
	w.Add(1, 3)
	snap := w.SnapshotShared()
	w.Add(0, 4) // append after capture
	w.ClearPartition(1)
	if snap.Len() != 3 {
		t.Fatalf("snapshot len = %d", snap.Len())
	}
	if got := snap.Items(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("snapshot partition 0 = %v", got)
	}
	if got := snap.Items(1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("snapshot partition 1 = %v", got)
	}
	if w.Len() != 3 { // [1 2 4] in partition 0, partition 1 cleared
		t.Fatalf("live len = %d", w.Len())
	}
}
