package state

import (
	"encoding/gob"
	"fmt"
)

// Version returns a counter that increases whenever partition p's
// contents change. Incremental checkpointing uses it to skip partitions
// that have not changed since the last snapshot — in a delta iteration
// most partitions stop changing long before convergence.
func (s *Store[V]) Version(p int) uint64 { return s.versions[p] }

func (s *Store[V]) bump(p int) { s.versions[p]++ }

// EncodePartition appends one partition's contents to a gob stream. The
// partition is written as sorted key/value pairs, so equal contents
// always encode to identical bytes (see partPairs).
func (s *Store[V]) EncodePartition(p int, enc *gob.Encoder) error {
	if err := enc.Encode(s.pairs(p)); err != nil {
		return fmt.Errorf("state: encoding store %q partition %d: %v", s.name, p, err)
	}
	return nil
}

// DecodePartition replaces one partition's contents from a gob stream
// written by EncodePartition.
func (s *Store[V]) DecodePartition(p int, dec *gob.Decoder) error {
	var pp partPairs[V]
	if err := dec.Decode(&pp); err != nil {
		return fmt.Errorf("state: decoding store %q partition %d: %v", s.name, p, err)
	}
	s.parts[p] = pp.toMap()
	s.shared[p] = false
	s.bump(p)
	s.markCleared(p)
	return nil
}

// Version returns the change counter of workset partition p.
func (w *Workset[T]) Version(p int) uint64 { return w.versions[p] }

func (w *Workset[T]) bump(p int) { w.versions[p]++ }

// EncodePartition appends one workset partition to a gob stream.
func (w *Workset[T]) EncodePartition(p int, enc *gob.Encoder) error {
	if err := enc.Encode(w.parts[p]); err != nil {
		return fmt.Errorf("state: encoding workset %q partition %d: %v", w.name, p, err)
	}
	return nil
}

// DecodePartition replaces one workset partition from a gob stream.
func (w *Workset[T]) DecodePartition(p int, dec *gob.Decoder) error {
	var part []T
	if err := dec.Decode(&part); err != nil {
		return fmt.Errorf("state: decoding workset %q partition %d: %v", w.name, p, err)
	}
	w.parts[p] = part
	w.bump(p)
	return nil
}
