package state

import (
	"encoding/gob"
	"fmt"
	"io"

	"optiflow/internal/graph"
)

// DenseStore is the columnar counterpart of Store for state whose key
// domain is exactly the vertex set of a graph: each partition holds its
// values in a flat column indexed by the vertex's local slot (see
// graph.Partitioning.Slot), so the superstep hot path reads and writes
// array entries instead of hashing into maps. It supports the same
// recovery surface as Store — copy-on-write captures, per-partition
// versions, delta logs — and serialises to the identical wire format
// (name + sorted key/value pairs per partition), so checkpoints remain
// byte-deterministic and the async writer encodes the columns directly
// without re-boxing.
type DenseStore[V any] struct {
	name string
	d    *graph.Dense
	pt   *graph.Partitioning

	// vals[p][slot] is the value of partition p's slot-th vertex;
	// has[p][slot] whether one is present. Slots ascend in VertexID
	// order, so in-order traversal is already sorted.
	vals  [][]V
	has   [][]bool
	count []int

	versions []uint64
	shared   []bool

	// Delta-log tracking: per-slot dirty bits plus a distinct-dirty
	// counter, and the partition-wiped flag (see Store.EncodeDelta).
	dirty      [][]bool
	dirtyCount []int
	cleared    []bool
}

// NewDenseStore creates an empty dense store over the given graph view
// and partitioning.
func NewDenseStore[V any](name string, d *graph.Dense, pt *graph.Partitioning) *DenseStore[V] {
	s := &DenseStore[V]{
		name:       name,
		d:          d,
		pt:         pt,
		vals:       make([][]V, pt.N),
		has:        make([][]bool, pt.N),
		count:      make([]int, pt.N),
		versions:   make([]uint64, pt.N),
		shared:     make([]bool, pt.N),
		dirty:      make([][]bool, pt.N),
		dirtyCount: make([]int, pt.N),
		cleared:    make([]bool, pt.N),
	}
	for p := range s.vals {
		n := len(pt.Owned[p])
		s.vals[p] = make([]V, n)
		s.has[p] = make([]bool, n)
		s.dirty[p] = make([]bool, n)
	}
	return s
}

// Name returns the store's name (used in snapshots and diagnostics).
func (s *DenseStore[V]) Name() string { return s.name }

// NumPartitions returns the partition count.
func (s *DenseStore[V]) NumPartitions() int { return len(s.vals) }

// Partitioning returns the partitioning the store is laid out by.
func (s *DenseStore[V]) Partitioning() *graph.Partitioning { return s.pt }

// Len returns the total number of present entries.
func (s *DenseStore[V]) Len() int {
	n := 0
	for _, c := range s.count {
		n += c
	}
	return n
}

// PartitionLen returns the number of present entries in partition p.
func (s *DenseStore[V]) PartitionLen(p int) int { return s.count[p] }

// unshare clones partition p's columns if a SnapshotShared capture
// aliases them, so in-place writes cannot be observed through the
// capture.
func (s *DenseStore[V]) unshare(p int) {
	if !s.shared[p] {
		return
	}
	s.vals[p] = append([]V(nil), s.vals[p]...)
	s.has[p] = append([]bool(nil), s.has[p]...)
	s.shared[p] = false
}

func (s *DenseStore[V]) bump(p int) { s.versions[p]++ }

// Version returns partition p's change counter (see Store.Version).
func (s *DenseStore[V]) Version(p int) uint64 { return s.versions[p] }

func (s *DenseStore[V]) markDirty(p int, slot int32) {
	if !s.dirty[p][slot] {
		s.dirty[p][slot] = true
		s.dirtyCount[p]++
	}
}

func (s *DenseStore[V]) markCleared(p int) {
	s.cleared[p] = true
	for i := range s.dirty[p] {
		s.dirty[p][i] = false
	}
	s.dirtyCount[p] = 0
}

// At returns the value of the vertex with dense index i.
func (s *DenseStore[V]) At(i int32) (V, bool) {
	p, slot := s.pt.PartOf[i], s.pt.Slot[i]
	if !s.has[p][slot] {
		var zero V
		return zero, false
	}
	return s.vals[p][slot], true
}

// SetAt stores v for the vertex with dense index i.
func (s *DenseStore[V]) SetAt(i int32, v V) {
	s.SetSlot(int(s.pt.PartOf[i]), s.pt.Slot[i], v)
}

// GetSlot returns partition p's slot-th value. The hot path uses slot
// addressing when it already iterates a partition's own vertices.
func (s *DenseStore[V]) GetSlot(p int, slot int32) (V, bool) {
	if !s.has[p][slot] {
		var zero V
		return zero, false
	}
	return s.vals[p][slot], true
}

// SetSlot stores v in partition p's slot-th entry.
func (s *DenseStore[V]) SetSlot(p int, slot int32, v V) {
	s.unshare(p)
	if !s.has[p][slot] {
		s.has[p][slot] = true
		s.count[p]++
	}
	s.vals[p][slot] = v
	s.bump(p)
	s.markDirty(p, slot)
}

// Get returns the value stored for vertex key k (a VertexID).
func (s *DenseStore[V]) Get(k uint64) (V, bool) {
	i, ok := s.d.IndexOf(graph.VertexID(k))
	if !ok {
		var zero V
		return zero, false
	}
	return s.At(i)
}

// Put stores v for vertex key k. Keys outside the graph's vertex set
// are a programming error: the dense layout has no slot for them.
func (s *DenseStore[V]) Put(k uint64, v V) {
	i, ok := s.d.IndexOf(graph.VertexID(k))
	if !ok {
		panic(fmt.Sprintf("state: dense store %q: key %d is not a vertex", s.name, k))
	}
	s.SetAt(i, v)
}

// ClearPartition drops every entry of partition p — the effect of the
// worker owning p crashing. The columns are replaced wholesale, so no
// clone is needed even when shared.
func (s *DenseStore[V]) ClearPartition(p int) {
	n := len(s.pt.Owned[p])
	s.vals[p] = make([]V, n)
	s.has[p] = make([]bool, n)
	s.shared[p] = false
	s.count[p] = 0
	s.bump(p)
	s.markCleared(p)
}

// ClearAll drops every entry of every partition.
func (s *DenseStore[V]) ClearAll() {
	for p := range s.vals {
		s.ClearPartition(p)
	}
}

// RangePartition iterates partition p's present entries in ascending
// key order (slot order is VertexID order by construction). It reports
// whether iteration ran to completion.
func (s *DenseStore[V]) RangePartition(p int, fn func(k uint64, v V) bool) bool {
	owned := s.pt.Owned[p]
	ids := s.d.IDs()
	for slot, idx := range owned {
		if !s.has[p][slot] {
			continue
		}
		if !fn(uint64(ids[idx]), s.vals[p][slot]) {
			return false
		}
	}
	return true
}

// Range iterates all present entries, partition by partition, in
// ascending key order within each partition.
func (s *DenseStore[V]) Range(fn func(k uint64, v V) bool) {
	for p := range s.vals {
		if !s.RangePartition(p, fn) {
			return
		}
	}
}

// Snapshot returns a deep copy of the store's contents.
func (s *DenseStore[V]) Snapshot() *DenseStore[V] {
	c := NewDenseStore[V](s.name, s.d, s.pt)
	for p := range s.vals {
		copy(c.vals[p], s.vals[p])
		copy(c.has[p], s.has[p])
		c.count[p] = s.count[p]
	}
	return c
}

// SnapshotShared returns a copy-on-write capture: O(parts) at the
// barrier, column arrays aliased until either side writes (see
// unshare). Checkpoint encoders walk the captured columns directly.
func (s *DenseStore[V]) SnapshotShared() *DenseStore[V] {
	c := &DenseStore[V]{
		name:       s.name,
		d:          s.d,
		pt:         s.pt,
		vals:       append([][]V(nil), s.vals...),
		has:        append([][]bool(nil), s.has...),
		count:      append([]int(nil), s.count...),
		versions:   append([]uint64(nil), s.versions...),
		shared:     make([]bool, len(s.vals)),
		dirty:      make([][]bool, len(s.vals)),
		dirtyCount: make([]int, len(s.vals)),
		cleared:    make([]bool, len(s.vals)),
	}
	for p := range s.vals {
		s.shared[p] = true
		c.shared[p] = true
		c.dirty[p] = make([]bool, len(s.dirty[p]))
	}
	return c
}

// CopyFrom replaces this store's contents with those of other.
func (s *DenseStore[V]) CopyFrom(other *DenseStore[V]) {
	if len(s.vals) != len(other.vals) {
		panic(fmt.Sprintf("state: CopyFrom: partition count mismatch %d != %d", len(s.vals), len(other.vals)))
	}
	for p := range s.vals {
		s.vals[p] = append([]V(nil), other.vals[p]...)
		s.has[p] = append([]bool(nil), other.has[p]...)
		s.shared[p] = false
		s.count[p] = other.count[p]
		s.bump(p)
		s.markCleared(p)
	}
}

// pairs serialises partition p in the exact partPairs form Store uses.
// Slots already ascend in key order, so no sort is needed — the encoder
// walks the columns once.
func (s *DenseStore[V]) pairs(p int) partPairs[V] {
	owned := s.pt.Owned[p]
	ids := s.d.IDs()
	pp := partPairs[V]{
		Keys: make([]uint64, 0, s.count[p]),
		Vals: make([]V, 0, s.count[p]),
	}
	for slot, idx := range owned {
		if !s.has[p][slot] {
			continue
		}
		pp.Keys = append(pp.Keys, uint64(ids[idx]))
		pp.Vals = append(pp.Vals, s.vals[p][slot])
	}
	return pp
}

// setPairs replaces partition p's contents from decoded pairs.
func (s *DenseStore[V]) setPairs(p int, pp partPairs[V]) error {
	n := len(s.pt.Owned[p])
	vals := make([]V, n)
	has := make([]bool, n)
	count := 0
	for i, k := range pp.Keys {
		idx, ok := s.d.IndexOf(graph.VertexID(k))
		if !ok || int(s.pt.PartOf[idx]) != p {
			return fmt.Errorf("state: decoding dense store %q: key %d does not belong to partition %d", s.name, k, p)
		}
		slot := s.pt.Slot[idx]
		vals[slot] = pp.Vals[i]
		has[slot] = true
		count++
	}
	s.vals[p] = vals
	s.has[p] = has
	s.shared[p] = false
	s.count[p] = count
	s.bump(p)
	s.markCleared(p)
	return nil
}

// Encode writes the store to w in gob encoding, for checkpointing.
func (s *DenseStore[V]) Encode(w io.Writer) error {
	return s.EncodeTo(gob.NewEncoder(w))
}

// EncodeTo appends the store to an existing gob stream. The bytes are
// identical to those of a map-based Store with equal contents.
func (s *DenseStore[V]) EncodeTo(enc *gob.Encoder) error {
	if err := enc.Encode(s.name); err != nil {
		return fmt.Errorf("state: encoding store %q: %v", s.name, err)
	}
	parts := make([]partPairs[V], len(s.vals))
	for p := range s.vals {
		parts[p] = s.pairs(p)
	}
	if err := enc.Encode(parts); err != nil {
		return fmt.Errorf("state: encoding store %q: %v", s.name, err)
	}
	return nil
}

// Decode replaces the store contents from a gob stream written by
// Encode (or by a map-based Store of the same name and layout).
func (s *DenseStore[V]) Decode(r io.Reader) error {
	return s.DecodeFrom(gob.NewDecoder(r))
}

// DecodeFrom reads the store from an existing gob stream.
func (s *DenseStore[V]) DecodeFrom(dec *gob.Decoder) error {
	var name string
	if err := dec.Decode(&name); err != nil {
		return fmt.Errorf("state: decoding store: %v", err)
	}
	if name != s.name {
		return fmt.Errorf("state: decoding store: snapshot is of %q, want %q", name, s.name)
	}
	var parts []partPairs[V]
	if err := dec.Decode(&parts); err != nil {
		return fmt.Errorf("state: decoding store %q: %v", s.name, err)
	}
	if len(parts) != len(s.vals) {
		return fmt.Errorf("state: decoding store %q: snapshot has %d partitions, store has %d",
			s.name, len(parts), len(s.vals))
	}
	for p, pp := range parts {
		if err := s.setPairs(p, pp); err != nil {
			return err
		}
	}
	return nil
}

// EncodePartition appends one partition's contents to a gob stream in
// the same sorted-pair form as Store.EncodePartition.
func (s *DenseStore[V]) EncodePartition(p int, enc *gob.Encoder) error {
	if err := enc.Encode(s.pairs(p)); err != nil {
		return fmt.Errorf("state: encoding store %q partition %d: %v", s.name, p, err)
	}
	return nil
}

// DecodePartition replaces one partition's contents from a gob stream
// written by EncodePartition.
func (s *DenseStore[V]) DecodePartition(p int, dec *gob.Decoder) error {
	var pp partPairs[V]
	if err := dec.Decode(&pp); err != nil {
		return fmt.Errorf("state: decoding store %q partition %d: %v", s.name, p, err)
	}
	return s.setPairs(p, pp)
}

// DirtyCount returns how many entries changed since the last
// EncodeDelta or MarkClean (cleared partitions count their full size).
func (s *DenseStore[V]) DirtyCount() int {
	n := 0
	for p := range s.vals {
		if s.cleared[p] {
			n += s.count[p]
			continue
		}
		n += s.dirtyCount[p]
	}
	return n
}

// EncodeDelta appends the change set since the previous EncodeDelta in
// the same wire form as Store.EncodeDelta, then marks the store clean.
func (s *DenseStore[V]) EncodeDelta(enc *gob.Encoder) error {
	if err := enc.Encode(s.name); err != nil {
		return fmt.Errorf("state: encoding delta of %q: %v", s.name, err)
	}
	deltas := make([]partDelta[V], len(s.vals))
	for p := range s.vals {
		d := partDelta[V]{}
		switch {
		case s.cleared[p]:
			d.Cleared = true
			d.Upserts = make(map[uint64]V, s.count[p])
			s.RangePartition(p, func(k uint64, v V) bool {
				d.Upserts[k] = v
				return true
			})
		case s.dirtyCount[p] > 0:
			d.Upserts = make(map[uint64]V, s.dirtyCount[p])
			owned := s.pt.Owned[p]
			ids := s.d.IDs()
			for slot, isDirty := range s.dirty[p] {
				if !isDirty {
					continue
				}
				k := uint64(ids[owned[slot]])
				if s.has[p][slot] {
					d.Upserts[k] = s.vals[p][slot]
				} else {
					d.Deletes = append(d.Deletes, k)
				}
			}
		}
		deltas[p] = d
	}
	if err := enc.Encode(deltas); err != nil {
		return fmt.Errorf("state: encoding delta of %q: %v", s.name, err)
	}
	s.MarkClean()
	return nil
}

// ApplyDelta replays one change set written by EncodeDelta (of a dense
// or map-based store with this name and layout).
func (s *DenseStore[V]) ApplyDelta(dec *gob.Decoder) error {
	var name string
	if err := dec.Decode(&name); err != nil {
		return fmt.Errorf("state: decoding delta: %v", err)
	}
	if name != s.name {
		return fmt.Errorf("state: decoding delta: delta is of %q, want %q", name, s.name)
	}
	var deltas []partDelta[V]
	if err := dec.Decode(&deltas); err != nil {
		return fmt.Errorf("state: decoding delta of %q: %v", s.name, err)
	}
	if len(deltas) != len(s.vals) {
		return fmt.Errorf("state: delta of %q has %d partitions, store has %d", s.name, len(deltas), len(s.vals))
	}
	slotOf := func(p int, k uint64) (int32, error) {
		idx, ok := s.d.IndexOf(graph.VertexID(k))
		if !ok || int(s.pt.PartOf[idx]) != p {
			return 0, fmt.Errorf("state: delta of %q: key %d does not belong to partition %d", s.name, k, p)
		}
		return s.pt.Slot[idx], nil
	}
	for p, d := range deltas {
		if d.Cleared {
			s.ClearPartition(p)
		}
		if len(d.Upserts) > 0 || len(d.Deletes) > 0 {
			s.unshare(p)
			for k, v := range d.Upserts {
				slot, err := slotOf(p, k)
				if err != nil {
					return err
				}
				if !s.has[p][slot] {
					s.has[p][slot] = true
					s.count[p]++
				}
				s.vals[p][slot] = v
			}
			for _, k := range d.Deletes {
				slot, err := slotOf(p, k)
				if err != nil {
					return err
				}
				if s.has[p][slot] {
					s.has[p][slot] = false
					s.count[p]--
					var zero V
					s.vals[p][slot] = zero
				}
			}
		}
		s.bump(p)
	}
	return nil
}

// MarkClean forgets all recorded changes: the next EncodeDelta starts
// from here.
func (s *DenseStore[V]) MarkClean() {
	for p := range s.vals {
		for i := range s.dirty[p] {
			s.dirty[p][i] = false
		}
		s.dirtyCount[p] = 0
		s.cleared[p] = false
	}
}
