package state

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

func encodeDelta(t *testing.T, s *Store[int]) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.EncodeDelta(gob.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func applyDelta(t *testing.T, s *Store[int], data []byte) {
	t.Helper()
	if err := s.ApplyDelta(gob.NewDecoder(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
}

func requireStoresEqual(t *testing.T, got, want *Store[int]) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("len %d != %d", got.Len(), want.Len())
	}
	want.Range(func(k uint64, v int) bool {
		g, ok := got.Get(k)
		if !ok || g != v {
			t.Fatalf("key %d: got %d (%v), want %d", k, g, ok, v)
		}
		return true
	})
}

func TestDeltaReplayReproducesState(t *testing.T) {
	src := NewStore[int]("s", 4)
	replica := NewStore[int]("s", 4)

	// Base: initial contents.
	for k := uint64(0); k < 50; k++ {
		src.Put(k, int(k))
	}
	var base bytes.Buffer
	if err := src.Encode(&base); err != nil {
		t.Fatal(err)
	}
	src.MarkClean()
	if err := replica.Decode(&base); err != nil {
		t.Fatal(err)
	}

	// Rounds of mutations, one delta each.
	rng := rand.New(rand.NewSource(1))
	var deltas [][]byte
	for round := 0; round < 10; round++ {
		for i := 0; i < 20; i++ {
			k := uint64(rng.Intn(80))
			switch rng.Intn(3) {
			case 0, 1:
				src.Put(k, rng.Intn(1000))
			case 2:
				src.Delete(k)
			}
		}
		deltas = append(deltas, encodeDelta(t, src))
	}
	for _, d := range deltas {
		applyDelta(t, replica, d)
	}
	requireStoresEqual(t, replica, src)
}

func TestDeltaOnlyCarriesChanges(t *testing.T) {
	s := NewStore[int]("s", 4)
	for k := uint64(0); k < 1000; k++ {
		s.Put(k, int(k))
	}
	full := encodeDelta(t, s) // everything dirty: effectively a full dump
	if s.DirtyCount() != 0 {
		t.Fatal("EncodeDelta did not reset tracking")
	}
	s.Put(1, 42)
	s.Put(2, 43)
	small := encodeDelta(t, s)
	if len(small) >= len(full)/10 {
		t.Fatalf("2-key delta is %d bytes, full dump %d", len(small), len(full))
	}
	empty := encodeDelta(t, s)
	if len(empty) >= len(small) {
		t.Fatalf("empty delta (%d bytes) not smaller than 2-key delta (%d)", len(empty), len(small))
	}
}

func TestDeltaHandlesClearedPartitions(t *testing.T) {
	src := NewStore[int]("s", 4)
	replica := NewStore[int]("s", 4)
	for k := uint64(0); k < 40; k++ {
		src.Put(k, 1)
	}
	replica.CopyFrom(src)
	src.MarkClean()

	src.ClearPartition(2)
	src.Put(100, 7) // may or may not land in partition 2
	applyDelta(t, replica, encodeDelta(t, src))
	requireStoresEqual(t, replica, src)
	if replica.PartitionLen(2) != src.PartitionLen(2) {
		t.Fatal("cleared partition not replicated")
	}
}

func TestDeltaDirtyCount(t *testing.T) {
	s := NewStore[int]("s", 2)
	if s.DirtyCount() != 0 {
		t.Fatal("fresh store dirty")
	}
	s.Put(1, 1)
	s.Put(1, 2) // same key: still one dirty entry
	s.Put(2, 1)
	if got := s.DirtyCount(); got != 2 {
		t.Fatalf("dirty = %d, want 2", got)
	}
	s.MarkClean()
	if s.DirtyCount() != 0 {
		t.Fatal("MarkClean failed")
	}
}

func TestDeltaNameMismatch(t *testing.T) {
	a := NewStore[int]("a", 2)
	a.Put(1, 1)
	data := encodeDelta(t, a)
	b := NewStore[int]("b", 2)
	if err := b.ApplyDelta(gob.NewDecoder(bytes.NewReader(data))); err == nil {
		t.Fatal("delta applied across store names")
	}
}
