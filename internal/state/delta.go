package state

import (
	"encoding/gob"
	"fmt"
)

// Delta-log support: the store tracks which keys changed since the
// last EncodeDelta, so a checkpoint can persist just the update stream.
// Unlike per-partition incremental snapshots (see Version), delta logs
// shrink with the algorithm's update rate even under hash partitioning,
// where every partition keeps receiving a trickle of updates until
// global convergence.

// partDelta is the serialised change set of one partition.
type partDelta[V any] struct {
	// Cleared reports that the partition was wiped since the last
	// delta; Upserts then hold its complete contents.
	Cleared bool
	Upserts map[uint64]V
	Deletes []uint64
}

// markDirty records a changed key. The tracking slices are allocated
// eagerly in NewStore: parallel tasks mutate distinct partitions
// concurrently, so any lazy allocation of the shared slice headers here
// would race.
func (s *Store[V]) markDirty(p int, k uint64) {
	if s.dirty[p] == nil {
		s.dirty[p] = make(map[uint64]struct{})
	}
	s.dirty[p][k] = struct{}{}
}

func (s *Store[V]) markCleared(p int) {
	s.cleared[p] = true
	s.dirty[p] = nil
}

// DirtyCount returns how many keys changed since the last EncodeDelta
// or MarkClean (cleared partitions count their full size).
func (s *Store[V]) DirtyCount() int {
	n := 0
	for p := range s.parts {
		if s.isCleared(p) {
			n += len(s.parts[p])
			continue
		}
		n += len(s.dirty[p])
	}
	return n
}

func (s *Store[V]) isCleared(p int) bool { return s.cleared[p] }

// EncodeDelta appends the change set since the previous EncodeDelta
// (or since creation / the last MarkClean) to a gob stream, then marks
// the store clean. Replaying deltas in order onto the base snapshot
// reproduces the current contents exactly.
func (s *Store[V]) EncodeDelta(enc *gob.Encoder) error {
	if err := enc.Encode(s.name); err != nil {
		return fmt.Errorf("state: encoding delta of %q: %v", s.name, err)
	}
	deltas := make([]partDelta[V], len(s.parts))
	for p := range s.parts {
		d := partDelta[V]{}
		switch {
		case s.isCleared(p):
			d.Cleared = true
			d.Upserts = s.parts[p]
		case len(s.dirty[p]) > 0:
			d.Upserts = make(map[uint64]V, len(s.dirty[p]))
			for k := range s.dirty[p] {
				if v, ok := s.parts[p][k]; ok {
					d.Upserts[k] = v
				} else {
					d.Deletes = append(d.Deletes, k)
				}
			}
		}
		deltas[p] = d
	}
	if err := enc.Encode(deltas); err != nil {
		return fmt.Errorf("state: encoding delta of %q: %v", s.name, err)
	}
	s.MarkClean()
	return nil
}

// ApplyDelta replays one change set written by EncodeDelta.
func (s *Store[V]) ApplyDelta(dec *gob.Decoder) error {
	var name string
	if err := dec.Decode(&name); err != nil {
		return fmt.Errorf("state: decoding delta: %v", err)
	}
	if name != s.name {
		return fmt.Errorf("state: decoding delta: delta is of %q, want %q", name, s.name)
	}
	var deltas []partDelta[V]
	if err := dec.Decode(&deltas); err != nil {
		return fmt.Errorf("state: decoding delta of %q: %v", s.name, err)
	}
	if len(deltas) != len(s.parts) {
		return fmt.Errorf("state: delta of %q has %d partitions, store has %d", s.name, len(deltas), len(s.parts))
	}
	for p, d := range deltas {
		// Every write happens inside a branch that unshared the
		// partition first, so a concurrent SnapshotShared capture can
		// never observe a replayed delta (the empty-delta path used to
		// fall through to the write loops unsanitized — zero iterations
		// in practice, but nothing enforced it).
		switch {
		case d.Cleared:
			// Build the replacement privately, publish it whole.
			fresh := make(map[uint64]V, len(d.Upserts))
			for k, v := range d.Upserts {
				fresh[k] = v
			}
			for _, k := range d.Deletes {
				delete(fresh, k)
			}
			s.parts[p] = fresh
			s.shared[p] = false
		case len(d.Upserts) > 0 || len(d.Deletes) > 0:
			s.unshare(p)
			for k, v := range d.Upserts {
				s.parts[p][k] = v
			}
			for _, k := range d.Deletes {
				delete(s.parts[p], k)
			}
		}
		s.bump(p)
	}
	return nil
}

// MarkClean forgets all recorded changes: the next EncodeDelta starts
// from here. Call it after restoring a snapshot chain so the next delta
// only carries genuinely new changes.
func (s *Store[V]) MarkClean() {
	for p := range s.parts {
		s.dirty[p] = nil
		s.cleared[p] = false
	}
}
