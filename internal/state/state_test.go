package state

import (
	"bytes"
	"testing"
	"testing/quick"

	"optiflow/internal/graph"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore[string]("labels", 4)
	if s.Name() != "labels" || s.NumPartitions() != 4 {
		t.Fatal("metadata wrong")
	}
	if _, ok := s.Get(7); ok {
		t.Fatal("empty store returned a value")
	}
	s.Put(7, "seven")
	s.Put(8, "eight")
	if v, ok := s.Get(7); !ok || v != "seven" {
		t.Fatalf("Get(7) = %q, %v", v, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Put(7, "SEVEN")
	if v, _ := s.Get(7); v != "SEVEN" {
		t.Fatal("overwrite failed")
	}
	if s.Len() != 2 {
		t.Fatal("overwrite changed length")
	}
	s.Delete(7)
	if _, ok := s.Get(7); ok {
		t.Fatal("delete failed")
	}
}

func TestStoreRoutesToOwnerPartition(t *testing.T) {
	s := NewStore[int]("routing", 8)
	for k := uint64(0); k < 1000; k++ {
		s.Put(k, int(k))
	}
	total := 0
	for p := 0; p < 8; p++ {
		s.RangePartition(p, func(k uint64, _ int) bool {
			if graph.Partition(graph.VertexID(k), 8) != p {
				t.Fatalf("key %d stored in partition %d, owner is %d", k, p, graph.Partition(graph.VertexID(k), 8))
			}
			total++
			return true
		})
	}
	if total != 1000 {
		t.Fatalf("ranged %d entries", total)
	}
	if s.PartitionOf(5) != graph.Partition(5, 8) {
		t.Fatal("PartitionOf disagrees with graph.Partition")
	}
}

func TestClearPartitionOnlyDropsThatPartition(t *testing.T) {
	s := NewStore[int]("clear", 4)
	for k := uint64(0); k < 100; k++ {
		s.Put(k, 1)
	}
	victim := 2
	lost := s.PartitionLen(victim)
	if lost == 0 {
		t.Fatal("test needs a non-empty victim partition")
	}
	s.ClearPartition(victim)
	if s.PartitionLen(victim) != 0 {
		t.Fatal("victim not cleared")
	}
	if s.Len() != 100-lost {
		t.Fatalf("Len = %d, want %d", s.Len(), 100-lost)
	}
	s.ClearAll()
	if s.Len() != 0 {
		t.Fatal("ClearAll failed")
	}
}

func TestRangeDeterministicOrder(t *testing.T) {
	s := NewStore[int]("order", 3)
	for k := uint64(0); k < 50; k++ {
		s.Put(k, int(k))
	}
	var first, second []uint64
	s.Range(func(k uint64, _ int) bool { first = append(first, k); return true })
	s.Range(func(k uint64, _ int) bool { second = append(second, k); return true })
	if len(first) != 50 || len(second) != 50 {
		t.Fatal("range missed entries")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("range order not deterministic")
		}
	}
	// Early termination.
	n := 0
	s.Range(func(uint64, int) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewStore[int]("snap", 2)
	s.Put(1, 10)
	c := s.Snapshot()
	s.Put(1, 99)
	s.Put(2, 20)
	if v, _ := c.Get(1); v != 10 {
		t.Fatalf("snapshot mutated: %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("snapshot len = %d", c.Len())
	}
	s.CopyFrom(c)
	if v, _ := s.Get(1); v != 10 || s.Len() != 1 {
		t.Fatal("CopyFrom failed")
	}
}

func TestStoreEncodeDecodeRoundTrip(t *testing.T) {
	f := func(keys []uint64, vals []int64) bool {
		s := NewStore[int64]("prop", 4)
		for i, k := range keys {
			v := int64(i)
			if i < len(vals) {
				v = vals[i]
			}
			s.Put(k, v)
		}
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			return false
		}
		d := NewStore[int64]("prop", 4)
		if err := d.Decode(&buf); err != nil {
			return false
		}
		if d.Len() != s.Len() {
			return false
		}
		ok := true
		s.Range(func(k uint64, v int64) bool {
			got, found := d.Get(k)
			if !found || got != v {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDecodeRejectsMismatch(t *testing.T) {
	s := NewStore[int]("alpha", 2)
	s.Put(1, 1)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	wrongName := NewStore[int]("beta", 2)
	if err := wrongName.Decode(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("decode accepted wrong store name")
	}
	wrongParts := NewStore[int]("alpha", 3)
	if err := wrongParts.Decode(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("decode accepted wrong partition count")
	}
}

func TestTableView(t *testing.T) {
	s := NewStore[string]("view", 4)
	s.Put(10, "ten")
	p := s.PartitionOf(10)
	tbl := s.Table(p)
	if v, ok := tbl.Get(10); !ok || v.(string) != "ten" {
		t.Fatalf("table get = %v, %v", v, ok)
	}
	if _, ok := tbl.Get(11); ok && s.PartitionOf(11) != p {
		t.Fatal("table view leaked other partition")
	}
	other := (p + 1) % 4
	if _, ok := s.Table(other).Get(10); ok {
		t.Fatal("wrong partition sees the key")
	}
}

func TestWorksetBasics(t *testing.T) {
	w := NewWorkset[string]("ws", 3)
	if w.Name() != "ws" || w.NumPartitions() != 3 {
		t.Fatal("metadata wrong")
	}
	w.Add(0, "a")
	w.Add(0, "b")
	w.Add(2, "c")
	if w.Len() != 3 || w.PartitionLen(0) != 2 || w.PartitionLen(1) != 0 {
		t.Fatalf("lens wrong: %d", w.Len())
	}
	if items := w.Items(0); len(items) != 2 || items[0] != "a" {
		t.Fatalf("items = %v", items)
	}
	w.ClearPartition(0)
	if w.Len() != 1 {
		t.Fatal("ClearPartition failed")
	}
	w.ClearAll()
	if w.Len() != 0 {
		t.Fatal("ClearAll failed")
	}
}

func TestWorksetSwapKeepsNames(t *testing.T) {
	a := NewWorkset[int]("current", 2)
	b := NewWorkset[int]("next", 2)
	a.Add(0, 1)
	b.Add(1, 2)
	b.Add(1, 3)
	a.Swap(b)
	if a.Name() != "current" || b.Name() != "next" {
		t.Fatal("swap exchanged names")
	}
	if a.Len() != 2 || b.Len() != 1 {
		t.Fatalf("swap contents wrong: %d, %d", a.Len(), b.Len())
	}
}

func TestWorksetSnapshotAndEncode(t *testing.T) {
	w := NewWorkset[int]("ws", 2)
	w.Add(0, 1)
	w.Add(1, 2)
	c := w.Snapshot()
	w.Add(0, 3)
	if c.Len() != 2 {
		t.Fatal("snapshot mutated")
	}
	var buf bytes.Buffer
	if err := w.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	d := NewWorkset[int]("ws", 2)
	if err := d.Decode(&buf); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 || d.PartitionLen(0) != 2 {
		t.Fatalf("decoded len = %d", d.Len())
	}
	bad := NewWorkset[int]("other", 2)
	var buf2 bytes.Buffer
	if err := w.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := bad.Decode(&buf2); err == nil {
		t.Fatal("decode accepted wrong name")
	}
	w.CopyFrom(c)
	if w.Len() != 2 {
		t.Fatal("CopyFrom failed")
	}
}

func TestNewStorePanicsOnBadPartitions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewStore[int]("bad", 0)
}

func TestNewWorksetPanicsOnBadPartitions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewWorkset[int]("bad", 0)
}
