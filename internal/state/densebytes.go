package state

import (
	"fmt"

	"optiflow/internal/colbytes"
)

// Partition byte views: the flat colbytes counterpart of the gob
// sorted-pair codec (EncodePartition / DecodePartition). The gob form
// pays a key lookup per entry and reflection per message; the byte
// view is the dense column itself, dumped in slot order — a u32 slot
// count, one presence byte per slot, then the present values encoded
// by a caller-supplied element codec. Slot order is VertexID order by
// construction, so two stores over the same partitioning produce
// byte-identical views for equal contents. The raw wire path
// (DESIGN.md §2.9) uses the same layout discipline for migrated
// partition state.

// AppendPartitionBytes appends partition p's columns to dst, encoding
// each present value with enc. It never fails: the view is complete
// by construction.
func (s *DenseStore[V]) AppendPartitionBytes(dst []byte, p int, enc func([]byte, V) []byte) []byte {
	has := s.has[p]
	dst = colbytes.AppendU32(dst, uint32(len(has)))
	for _, h := range has {
		dst = colbytes.AppendBool(dst, h)
	}
	vals := s.vals[p]
	for slot, h := range has {
		if h {
			dst = enc(dst, vals[slot])
		}
	}
	return dst
}

// RestorePartitionBytes replaces partition p's contents from a view
// written by AppendPartitionBytes, decoding each present value with
// dec. The slot count is validated against the partitioning up front,
// and decoded columns are installed only after the whole view parses,
// so a truncated or misrouted view fails without half-applying. Like
// DecodePartition, a successful restore unshares the partition, bumps
// its version, and marks it clean.
func (s *DenseStore[V]) RestorePartitionBytes(p int, r *colbytes.Reader, dec func(*colbytes.Reader) V) error {
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return fmt.Errorf("state: restoring store %q partition %d: %v", s.name, p, err)
	}
	if n != len(s.pt.Owned[p]) {
		return fmt.Errorf("state: restoring store %q partition %d: view has %d slots, partition owns %d",
			s.name, p, n, len(s.pt.Owned[p]))
	}
	vals := make([]V, n)
	has := make([]bool, n)
	count := 0
	for slot := 0; slot < n; slot++ {
		if r.Bool() {
			has[slot] = true
			count++
		}
	}
	for slot := 0; slot < n; slot++ {
		if has[slot] {
			vals[slot] = dec(r)
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("state: restoring store %q partition %d: %v", s.name, p, err)
	}
	s.vals[p] = vals
	s.has[p] = has
	s.shared[p] = false
	s.count[p] = count
	s.bump(p)
	s.markCleared(p)
	return nil
}
