// Package state holds the partitioned intermediate state of an
// iterative computation: the solution set / rank vector partitions that
// live on cluster workers across supersteps, and the worksets of delta
// iterations. Failures destroy partitions of these stores (§2.2 of the
// paper); recovery policies snapshot, restore, clear and compensate
// them.
package state

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"optiflow/internal/graph"
)

// Store is a keyed store hash-partitioned into nparts partitions with
// the same partitioning function the dataflow engine uses for hash
// exchanges, so the task at partition p only ever touches parts[p] and
// no locking is needed during a superstep.
type Store[V any] struct {
	name     string
	parts    []map[uint64]V
	versions []uint64 // per-partition change counters (see Version)

	// Delta-log tracking (see EncodeDelta): keys changed and partitions
	// wiped since the last delta. Both allocated lazily.
	dirty   []map[uint64]struct{}
	cleared []bool

	// shared marks partitions whose map is aliased by a SnapshotShared
	// capture: the next in-place mutation clones the partition first
	// (copy-on-write), so captures stay immutable while the next
	// superstep runs.
	shared []bool
}

// NewStore creates an empty store with nparts partitions.
func NewStore[V any](name string, nparts int) *Store[V] {
	if nparts < 1 {
		panic(fmt.Sprintf("state: store %q: nparts must be >= 1, got %d", name, nparts))
	}
	s := &Store[V]{
		name:     name,
		parts:    make([]map[uint64]V, nparts),
		versions: make([]uint64, nparts),
		dirty:    make([]map[uint64]struct{}, nparts),
		cleared:  make([]bool, nparts),
		shared:   make([]bool, nparts),
	}
	for i := range s.parts {
		s.parts[i] = make(map[uint64]V)
	}
	return s
}

// Name returns the store's name (used in snapshots and diagnostics).
func (s *Store[V]) Name() string { return s.name }

// NumPartitions returns the partition count.
func (s *Store[V]) NumPartitions() int { return len(s.parts) }

// PartitionOf returns the partition owning key k.
func (s *Store[V]) PartitionOf(k uint64) int {
	return graph.Partition(graph.VertexID(k), len(s.parts))
}

// Get returns the value stored under k.
func (s *Store[V]) Get(k uint64) (V, bool) {
	v, ok := s.parts[s.PartitionOf(k)][k]
	return v, ok
}

// Put stores v under k in the partition owning k.
func (s *Store[V]) Put(k uint64, v V) {
	p := s.PartitionOf(k)
	s.unshare(p)
	s.parts[p][k] = v
	s.bump(p)
	s.markDirty(p, k)
}

// Delete removes k.
func (s *Store[V]) Delete(k uint64) {
	p := s.PartitionOf(k)
	s.unshare(p)
	delete(s.parts[p], k)
	s.bump(p)
	s.markDirty(p, k)
}

// unshare clones partition p if a SnapshotShared capture aliases it, so
// the in-place mutation about to happen cannot be observed through the
// capture. Reading the aliased map while capture encoders read it too
// is safe (concurrent map reads); all writes go to the fresh clone.
func (s *Store[V]) unshare(p int) {
	if !s.shared[p] {
		return
	}
	part := s.parts[p]
	cp := make(map[uint64]V, len(part))
	for k, v := range part {
		cp[k] = v
	}
	s.parts[p] = cp
	s.shared[p] = false
}

// Len returns the total number of entries.
func (s *Store[V]) Len() int {
	n := 0
	for _, p := range s.parts {
		n += len(p)
	}
	return n
}

// PartitionLen returns the number of entries in partition p.
func (s *Store[V]) PartitionLen(p int) int { return len(s.parts[p]) }

// ClearPartition drops every entry of partition p — the effect of the
// worker owning p crashing.
func (s *Store[V]) ClearPartition(p int) {
	s.parts[p] = make(map[uint64]V) // wholesale replacement: no clone needed
	s.shared[p] = false
	s.bump(p)
	s.markCleared(p)
}

// ClearAll drops every entry of every partition.
func (s *Store[V]) ClearAll() {
	for p := range s.parts {
		s.ClearPartition(p)
	}
}

// Range calls fn for every entry, partition by partition, in sorted key
// order within each partition (deterministic). fn returning false stops
// the iteration.
func (s *Store[V]) Range(fn func(k uint64, v V) bool) {
	for p := range s.parts {
		if !s.RangePartition(p, fn) {
			return
		}
	}
}

// RangePartition iterates partition p in sorted key order. It reports
// whether iteration ran to completion.
func (s *Store[V]) RangePartition(p int, fn func(k uint64, v V) bool) bool {
	part := s.parts[p]
	keys := make([]uint64, 0, len(part))
	for k := range part {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if !fn(k, part[k]) {
			return false
		}
	}
	return true
}

// Snapshot returns a deep-enough copy of the store for value types V
// (maps are copied; V values are copied by assignment).
func (s *Store[V]) Snapshot() *Store[V] {
	c := NewStore[V](s.name, len(s.parts))
	for p, part := range s.parts {
		for k, v := range part {
			c.parts[p][k] = v
		}
	}
	return c
}

// SnapshotShared returns a copy-on-write capture of the store: O(parts)
// at the barrier instead of O(entries). The capture aliases the live
// partition maps; both sides are marked shared, and whichever side
// mutates a partition next clones it first (see unshare). The intended
// use is checkpoint capture — take the view at the superstep barrier,
// encode it on background goroutines while the next superstep runs.
func (s *Store[V]) SnapshotShared() *Store[V] {
	c := &Store[V]{
		name:     s.name,
		parts:    append([]map[uint64]V(nil), s.parts...),
		versions: append([]uint64(nil), s.versions...),
		dirty:    make([]map[uint64]struct{}, len(s.parts)),
		cleared:  make([]bool, len(s.parts)),
		shared:   make([]bool, len(s.parts)),
	}
	for p := range s.parts {
		s.shared[p] = true
		c.shared[p] = true
	}
	return c
}

// CopyFrom replaces this store's contents with those of other.
func (s *Store[V]) CopyFrom(other *Store[V]) {
	if len(s.parts) != len(other.parts) {
		panic(fmt.Sprintf("state: CopyFrom: partition count mismatch %d != %d", len(s.parts), len(other.parts)))
	}
	for p := range s.parts {
		s.parts[p] = make(map[uint64]V, len(other.parts[p]))
		s.shared[p] = false
		for k, v := range other.parts[p] {
			s.parts[p][k] = v
		}
		s.bump(p)
		s.markCleared(p)
	}
}

// partPairs is the serialised form of one partition: keys in ascending
// order with their values aligned. Encoding sorted pairs instead of the
// map makes snapshots byte-deterministic — two encodes of equal state
// produce identical bytes, which the restore-equivalence tests and the
// checkpoint commit protocol rely on.
type partPairs[V any] struct {
	Keys []uint64
	Vals []V
}

func (s *Store[V]) pairs(p int) partPairs[V] {
	part := s.parts[p]
	pp := partPairs[V]{Keys: make([]uint64, 0, len(part))}
	for k := range part {
		pp.Keys = append(pp.Keys, k)
	}
	sort.Slice(pp.Keys, func(i, j int) bool { return pp.Keys[i] < pp.Keys[j] })
	pp.Vals = make([]V, len(pp.Keys))
	for i, k := range pp.Keys {
		pp.Vals[i] = part[k]
	}
	return pp
}

func (pp partPairs[V]) toMap() map[uint64]V {
	m := make(map[uint64]V, len(pp.Keys))
	for i, k := range pp.Keys {
		m[k] = pp.Vals[i]
	}
	return m
}

// Encode writes the store to w in gob encoding, for checkpointing.
func (s *Store[V]) Encode(w io.Writer) error {
	return s.EncodeTo(gob.NewEncoder(w))
}

// EncodeTo appends the store to an existing gob stream, so that a job
// snapshot can serialise several stores into one checkpoint.
func (s *Store[V]) EncodeTo(enc *gob.Encoder) error {
	if err := enc.Encode(s.name); err != nil {
		return fmt.Errorf("state: encoding store %q: %v", s.name, err)
	}
	parts := make([]partPairs[V], len(s.parts))
	for p := range s.parts {
		parts[p] = s.pairs(p)
	}
	if err := enc.Encode(parts); err != nil {
		return fmt.Errorf("state: encoding store %q: %v", s.name, err)
	}
	return nil
}

// Decode replaces the store contents from a gob stream written by
// Encode. The partition count must match.
func (s *Store[V]) Decode(r io.Reader) error {
	return s.DecodeFrom(gob.NewDecoder(r))
}

// DecodeFrom reads the store from an existing gob stream (counterpart
// of EncodeTo).
func (s *Store[V]) DecodeFrom(dec *gob.Decoder) error {
	var name string
	if err := dec.Decode(&name); err != nil {
		return fmt.Errorf("state: decoding store: %v", err)
	}
	if name != s.name {
		return fmt.Errorf("state: decoding store: snapshot is of %q, want %q", name, s.name)
	}
	var parts []partPairs[V]
	if err := dec.Decode(&parts); err != nil {
		return fmt.Errorf("state: decoding store %q: %v", s.name, err)
	}
	if len(parts) != len(s.parts) {
		return fmt.Errorf("state: decoding store %q: snapshot has %d partitions, store has %d",
			s.name, len(parts), len(s.parts))
	}
	for p, pp := range parts {
		s.parts[p] = pp.toMap()
		s.shared[p] = false
		s.bump(p)
		s.markCleared(p)
	}
	return nil
}

// TableView adapts one partition to the dataflow Table interface for
// lookup joins. The view is read-only by convention: lookup tasks must
// not mutate the store mid-superstep.
type TableView[V any] struct {
	part map[uint64]V
}

// Get implements dataflow.Table.
func (t TableView[V]) Get(key uint64) (any, bool) {
	v, ok := t.part[key]
	if !ok {
		return nil, false
	}
	return v, true
}

// Table returns the Table view of partition p.
func (s *Store[V]) Table(p int) TableView[V] {
	return TableView[V]{part: s.parts[p]}
}
