package iterate

import (
	"testing"
	"testing/quick"

	"optiflow/internal/checkpoint"
	"optiflow/internal/cluster"
	"optiflow/internal/failure"
	"optiflow/internal/recovery"
)

// Property: under any random failure schedule, every recovering policy
// drives the loop to exactly the target number of committed supersteps,
// and the restored counter state matches that count (the counter job's
// invariant: state == committed supersteps).
func TestPoliciesReachTargetUnderRandomFailures(t *testing.T) {
	f := func(seed int64, targetRaw, probRaw uint8) bool {
		target := int(targetRaw%12) + 3
		prob := float64(probRaw%50) / 100.0

		policies := []func() recovery.Policy{
			func() recovery.Policy { return recovery.Optimistic{} },
			func() recovery.Policy { return recovery.NewCheckpoint(2, checkpoint.NewMemoryStore()) },
			func() recovery.Policy { return recovery.Restart{} },
		}
		for _, mk := range policies {
			job := &counterJob{}
			l := newLoop(job, target)
			l.Policy = mk()
			l.Injector = failure.NewRandom(prob, seed, 4)
			l.MaxTicks = 10000
			res, err := l.Run()
			if err != nil {
				return false
			}
			if res.Supersteps != target {
				return false
			}
			switch l.Policy.(type) {
			case recovery.Restart, *recovery.Checkpoint:
				// Counter state is rolled back/reset exactly in sync with
				// the superstep counter.
				if job.counter != target {
					return false
				}
			}
			if res.Ticks < target || res.Ticks > target+4*(target+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sample stream is well-formed for any schedule —
// monotone ticks, superstep never above the committed count, failures
// annotated consistently.
func TestSampleStreamWellFormed(t *testing.T) {
	f := func(seed int64, probRaw uint8) bool {
		prob := float64(probRaw%60) / 100.0
		job := &counterJob{}
		l := newLoop(job, 8)
		l.Policy = recovery.NewCheckpoint(1, checkpoint.NewMemoryStore())
		l.Injector = failure.NewRandom(prob, seed, 5)
		l.Cluster = cluster.New(3, 4)
		res, err := l.Run()
		if err != nil {
			return false
		}
		prevTick := -1
		for _, s := range res.Samples {
			if s.Tick != prevTick+1 {
				return false
			}
			prevTick = s.Tick
			if s.Superstep < 0 || s.Superstep > 8 {
				return false
			}
			if s.Failed() != (len(s.LostPartitions) > 0) {
				return false
			}
			if s.Failed() && s.Recovery == "" {
				return false
			}
		}
		return len(res.Samples) == res.Ticks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
