package iterate

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"optiflow/internal/checkpoint"
	"optiflow/internal/cluster"
	"optiflow/internal/exec"
	"optiflow/internal/failure"
	"optiflow/internal/recovery"
)

// counterJob is a minimal iterative job: its "state" is a counter that
// the step increments; snapshots serialise the counter.
type counterJob struct {
	counter int
	cleared []int
	comps   int
	resets  int
}

func (c *counterJob) Name() string { return "counter" }

func (c *counterJob) SnapshotTo(buf *bytes.Buffer) error {
	_, err := fmt.Fprintf(buf, "%d", c.counter)
	return err
}

func (c *counterJob) RestoreFrom(data []byte) error {
	_, err := fmt.Sscanf(string(data), "%d", &c.counter)
	return err
}

func (c *counterJob) ClearPartitions(parts []int) { c.cleared = append(c.cleared, parts...) }
func (c *counterJob) Compensate(lost []int) error { c.comps++; return nil }
func (c *counterJob) ResetToInitial() error       { c.counter = 0; c.resets++; return nil }

func (c *counterJob) step(*Context) (StepStats, error) {
	c.counter++
	return StepStats{Messages: int64(c.counter), Updates: 1}, nil
}

func newLoop(job *counterJob, target int) *Loop {
	return &Loop{
		Name:    "counter",
		Step:    job.step,
		Done:    func(committed int) bool { return committed >= target },
		Job:     job,
		Cluster: cluster.New(4, 4),
	}
}

func TestLoopRunsToTermination(t *testing.T) {
	job := &counterJob{}
	res, err := newLoop(job, 5).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 5 || res.Ticks != 5 || res.Failures != 0 {
		t.Fatalf("res = %+v", res)
	}
	if job.counter != 5 {
		t.Fatalf("job ran %d steps", job.counter)
	}
	if len(res.Samples) != 5 {
		t.Fatalf("%d samples", len(res.Samples))
	}
	for i, s := range res.Samples {
		if s.Tick != i || s.Superstep != i || s.Failed() {
			t.Fatalf("sample %d = %+v", i, s)
		}
	}
	if got := res.MessagesSeries(); got[0] != 1 || got[4] != 5 {
		t.Fatalf("messages series = %v", got)
	}
}

func TestLoopValidation(t *testing.T) {
	if _, err := (&Loop{}).Run(); err == nil {
		t.Fatal("empty loop accepted")
	}
	job := &counterJob{}
	l := newLoop(job, 1)
	l.Cluster = nil
	if _, err := l.Run(); err == nil {
		t.Fatal("missing cluster accepted")
	}
	l2 := newLoop(job, 1)
	l2.Job = nil
	if _, err := l2.Run(); err == nil {
		t.Fatal("missing job accepted")
	}
}

func TestLoopMaxTicks(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 1000)
	l.MaxTicks = 10
	_, err := l.Run()
	if err == nil || !strings.Contains(err.Error(), "10 superstep attempts") {
		t.Fatalf("err = %v", err)
	}
}

func TestStepErrorAborts(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 5)
	boom := errors.New("step exploded")
	l.Step = func(ctx *Context) (StepStats, error) {
		if ctx.Tick == 2 {
			return StepStats{}, boom
		}
		return job.step(ctx)
	}
	_, err := l.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestOptimisticFailureFlow(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 5)
	l.Policy = recovery.Optimistic{}
	l.Injector = failure.NewScripted(nil).At(2, 1)
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Optimistic recovery continues: still 5 ticks, one compensated.
	if res.Ticks != 5 || res.Failures != 1 {
		t.Fatalf("res = %+v", res)
	}
	if job.comps != 1 {
		t.Fatalf("compensations = %d", job.comps)
	}
	if len(job.cleared) == 0 {
		t.Fatal("lost partitions were not cleared before compensation")
	}
	s := res.Samples[2]
	if !s.Failed() || len(s.LostPartitions) == 0 || !strings.Contains(s.Recovery, "compensated") {
		t.Fatalf("failure sample = %+v", s)
	}
	if got := res.FailureTicks(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("failure ticks = %v", got)
	}
	// The worker is gone; a fresh one owns its partitions.
	if l.Cluster.IsAlive(1) {
		t.Fatal("failed worker still alive")
	}
	if len(l.Cluster.Workers()) != 4 {
		t.Fatalf("workers = %v", l.Cluster.Workers())
	}
}

func TestCheckpointFailureRollsBack(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 6)
	l.Policy = recovery.NewCheckpoint(2, checkpoint.NewMemoryStore())
	l.Injector = failure.NewScripted(nil).At(4, 0)
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Failure at superstep 4 rolls back to the snapshot taken after
	// superstep 3, re-executing superstep 4: one extra tick.
	if res.Supersteps != 6 {
		t.Fatalf("supersteps = %d", res.Supersteps)
	}
	if res.Ticks != 7 {
		t.Fatalf("ticks = %d, want 7 (one re-execution)", res.Ticks)
	}
	// The failed attempt's increment was rolled back with the restore,
	// so the final counter equals the committed supersteps.
	if job.counter != 6 {
		t.Fatalf("counter = %d", job.counter)
	}
	if job.comps != 0 {
		t.Fatal("rollback must not invoke compensation")
	}
	if !strings.Contains(res.Samples[4].Recovery, "rolled back") {
		t.Fatalf("recovery note = %q", res.Samples[4].Recovery)
	}
	if res.Overhead.Checkpoints == 0 {
		t.Fatal("overhead not reported")
	}
}

func TestRestartFailureRewindsToZero(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 4)
	l.Policy = recovery.Restart{}
	l.Injector = failure.NewScripted(nil).At(2, 0)
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 3 attempts wasted (supersteps 0..2), then 4 committed.
	if res.Ticks != 7 || res.Supersteps != 4 {
		t.Fatalf("res = %+v", res)
	}
	if job.resets != 1 {
		t.Fatalf("resets = %d", job.resets)
	}
}

func TestNonePolicyFailureAborts(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 5)
	l.Injector = failure.NewScripted(nil).At(1, 0)
	_, err := l.Run()
	if !errors.Is(err, recovery.ErrUnrecoverable) {
		t.Fatalf("err = %v", err)
	}
}

func TestOnSampleObservesEveryAttempt(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 3)
	var seen []int
	l.OnSample = func(s Sample) { seen = append(seen, s.Tick) }
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[2] != 2 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestExtraSeries(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 3)
	l.Step = func(ctx *Context) (StepStats, error) {
		job.counter++
		return StepStats{Extra: map[string]float64{"l1": float64(10 - ctx.Tick)}}, nil
	}
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ExtraSeries("l1"); got[0] != 10 || got[2] != 8 {
		t.Fatalf("extra series = %v", got)
	}
}

func TestBulkDone(t *testing.T) {
	done := BulkDone(5, nil)
	if done(4) || !done(5) || !done(6) {
		t.Fatal("max-iteration logic wrong")
	}
	converged := false
	done = BulkDone(100, func(int) bool { return converged })
	if done(1) {
		t.Fatal("not converged yet")
	}
	converged = true
	if !done(1) {
		t.Fatal("convergence ignored")
	}
	// Convergence is never consulted before the first superstep.
	if done(0) {
		t.Fatal("converged before running anything")
	}
}

func TestDeltaDone(t *testing.T) {
	n := 3
	done := DeltaDone(func() int { return n })
	if done(0) {
		t.Fatal("non-empty workset terminated")
	}
	n = 0
	if !done(5) {
		t.Fatal("empty workset not terminated")
	}
}

func TestZeroStepLoopTerminatesImmediately(t *testing.T) {
	job := &counterJob{}
	res, err := newLoop(job, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks != 0 || job.counter != 0 {
		t.Fatalf("res = %+v", res)
	}
}

// faultHonoringStep wraps job.step so it aborts like the exec engine:
// when a fault is armed for the attempt, it returns a wrapped
// *exec.WorkerFailure instead of committing.
func faultHonoringStep(job *counterJob) func(*Context) (StepStats, error) {
	return func(ctx *Context) (StepStats, error) {
		if ctx.Fault != nil {
			return StepStats{}, fmt.Errorf("job: superstep: %w", &exec.WorkerFailure{
				Workers:    ctx.Fault.Workers,
				Partitions: ctx.Fault.Partitions,
				Processed:  ctx.Fault.AfterRecords,
			})
		}
		return job.step(ctx)
	}
}

func TestMidStepAbortDiscardsAttempt(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 5)
	l.Step = faultHonoringStep(job)
	l.Policy = recovery.Optimistic{}
	l.Injector = failure.NewScripted(nil).AtMidStep(2, 0, 1)
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d", res.Failures)
	}
	if got := res.AbortedTicks(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("aborted ticks = %v", got)
	}
	s := res.Samples[2]
	if !s.Aborted || !s.Failed() {
		t.Fatalf("aborted sample = %+v", s)
	}
	// The partial attempt's stats are discarded.
	if s.Stats.Messages != 0 || s.Stats.Updates != 0 {
		t.Fatalf("aborted sample kept stats: %+v", s.Stats)
	}
	if len(s.FailedWorkers) != 1 || s.FailedWorkers[0] != 1 {
		t.Fatalf("failed workers = %v", s.FailedWorkers)
	}
	if len(s.LostPartitions) == 0 {
		t.Fatal("no lost partitions recorded")
	}
	if job.comps != 1 {
		t.Fatalf("compensations = %d", job.comps)
	}
	// The aborted attempt did not run job.step, so only the committed
	// attempts incremented the counter.
	if job.counter != res.Ticks-1 {
		t.Fatalf("counter = %d, ticks = %d", job.counter, res.Ticks)
	}
	if l.Cluster.IsAlive(1) || len(l.Cluster.Workers()) != 4 {
		t.Fatalf("cluster after abort: workers = %v", l.Cluster.Workers())
	}
}

func TestMidStepAbortUnderCheckpointReexecutes(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 4)
	l.Step = faultHonoringStep(job)
	l.Policy = recovery.NewCheckpoint(1, checkpoint.NewMemoryStore())
	l.Injector = failure.NewScripted(nil).AtMidStep(2, 0, 0)
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Superstep 2 aborted, restored from the snapshot after superstep 1,
	// re-executed: 5 attempts for 4 committed supersteps.
	if res.Supersteps != 4 || res.Ticks != 5 || res.Failures != 1 {
		t.Fatalf("res = %+v", res)
	}
	if job.counter != 4 {
		t.Fatalf("counter = %d", job.counter)
	}
	if job.comps != 0 {
		t.Fatal("rollback must not invoke compensation")
	}
	if !res.Samples[2].Aborted {
		t.Fatalf("sample 2 = %+v", res.Samples[2])
	}
	// The re-execution presents the same superstep on a later tick.
	if res.Samples[3].Superstep != 2 {
		t.Fatalf("retry sample = %+v", res.Samples[3])
	}
}

func TestMidStepAbortUnderRestart(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 3)
	l.Step = faultHonoringStep(job)
	l.Policy = recovery.Restart{}
	l.Injector = failure.NewScripted(nil).AtMidStep(1, 0, 2)
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Supersteps 0 and 1 (aborted) wasted, then 3 committed.
	if res.Ticks != 5 || res.Supersteps != 3 || job.resets != 1 {
		t.Fatalf("res = %+v, resets = %d", res, job.resets)
	}
	if !res.Samples[1].Aborted {
		t.Fatalf("sample 1 = %+v", res.Samples[1])
	}
}

func TestMidStepAbortUnderNoneAborts(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 5)
	l.Step = faultHonoringStep(job)
	l.Injector = failure.NewScripted(nil).AtMidStep(1, 0, 0)
	_, err := l.Run()
	if !errors.Is(err, recovery.ErrUnrecoverable) {
		t.Fatalf("err = %v", err)
	}
}

func TestMidStepFallbackKillsAtBoundary(t *testing.T) {
	// counterJob.step ignores ctx.Fault — like a loop body that never
	// hands the fault to the engine. The scheduled workers must still
	// die, at the superstep boundary, not be silently dropped.
	job := &counterJob{}
	l := newLoop(job, 5)
	l.Policy = recovery.Optimistic{}
	l.Injector = failure.NewScripted(nil).AtMidStep(2, 1000, 1)
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d", res.Failures)
	}
	s := res.Samples[2]
	if s.Aborted {
		t.Fatal("boundary fallback must not mark the sample aborted")
	}
	if !s.Failed() || s.FailedWorkers[0] != 1 {
		t.Fatalf("sample = %+v", s)
	}
	// The attempt committed before the workers died.
	if s.Stats.Messages == 0 {
		t.Fatal("boundary fallback discarded committed stats")
	}
	if l.Cluster.IsAlive(1) {
		t.Fatal("scheduled worker survived")
	}
}

// phantomInjector names the same worker at every attempt, dead or not —
// the failure mode of satellite bugfix 2: reporting an already-dead
// worker must not count as a new failure.
type phantomInjector struct{ worker int }

func (p phantomInjector) FailuresAt(int, int, []int) []int { return []int{p.worker} }

func TestAlreadyDeadWorkerIsNotAFailure(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 5)
	l.Policy = recovery.Optimistic{}
	l.Injector = phantomInjector{worker: 1}
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Worker 1 dies once; every later report names a dead worker and
	// must be ignored — no spurious spare workers, no phantom failures.
	if res.Failures != 1 {
		t.Fatalf("failures = %d", res.Failures)
	}
	if got := len(l.Cluster.Workers()); got != 4 {
		t.Fatalf("cluster grew to %d workers: %v", got, l.Cluster.Workers())
	}
	if job.comps != 1 {
		t.Fatalf("compensations = %d", job.comps)
	}
}

func TestMultiWorkerFailureAcquiresOneReplacementEach(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 5)
	l.Policy = recovery.Optimistic{}
	l.Injector = failure.NewScripted(map[int][]int{2: {0, 1, 3}})
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d", res.Failures)
	}
	s := res.Samples[2]
	if len(s.FailedWorkers) != 3 || len(s.LostPartitions) != 3 {
		t.Fatalf("sample = %+v", s)
	}
	// One replacement per dead worker: the cluster keeps its size.
	if got := len(l.Cluster.Workers()); got != 4 {
		t.Fatalf("cluster has %d workers after triple failure: %v", got, l.Cluster.Workers())
	}
	acquires := 0
	for _, e := range l.Cluster.Events() {
		if e.Kind == "acquire" {
			acquires++
		}
	}
	if acquires != 3 {
		t.Fatalf("acquires = %d, want 3", acquires)
	}
}

func TestMultiWorkerFailureUnderAllPolicies(t *testing.T) {
	policies := map[string]func() recovery.Policy{
		"optimistic": func() recovery.Policy { return recovery.Optimistic{} },
		"checkpoint": func() recovery.Policy { return recovery.NewCheckpoint(1, checkpoint.NewMemoryStore()) },
		"restart":    func() recovery.Policy { return recovery.Restart{} },
	}
	for name, mk := range policies {
		t.Run(name, func(t *testing.T) {
			job := &counterJob{}
			l := newLoop(job, 5)
			l.Policy = mk()
			l.Injector = failure.NewScripted(map[int][]int{1: {0, 2}})
			res, err := l.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Supersteps != 5 || res.Failures != 1 {
				t.Fatalf("res = %+v", res)
			}
			if got := len(l.Cluster.Workers()); got != 4 {
				t.Fatalf("cluster has %d workers: %v", got, l.Cluster.Workers())
			}
		})
	}
	t.Run("none", func(t *testing.T) {
		job := &counterJob{}
		l := newLoop(job, 5)
		l.Injector = failure.NewScripted(map[int][]int{1: {0, 2}})
		if _, err := l.Run(); !errors.Is(err, recovery.ErrUnrecoverable) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestCheckpointFailureAtSuperstepZero(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 4)
	l.Policy = recovery.NewCheckpoint(2, checkpoint.NewMemoryStore())
	l.Injector = failure.NewScripted(nil).At(0, 0)
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Setup snapshots the initial state (superstep -1), so a failure at
	// superstep 0 restores it and resumes at superstep 0.
	if res.Supersteps != 4 || res.Ticks != 5 {
		t.Fatalf("res = %+v", res)
	}
	if job.counter != 4 {
		t.Fatalf("counter = %d (attempt not rolled back?)", job.counter)
	}
	if !strings.Contains(res.Samples[0].Recovery, "rewound to superstep 0") {
		t.Fatalf("recovery note = %q", res.Samples[0].Recovery)
	}
}
