package iterate

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"optiflow/internal/checkpoint"
	"optiflow/internal/cluster"
	"optiflow/internal/failure"
	"optiflow/internal/recovery"
)

// counterJob is a minimal iterative job: its "state" is a counter that
// the step increments; snapshots serialise the counter.
type counterJob struct {
	counter int
	cleared []int
	comps   int
	resets  int
}

func (c *counterJob) Name() string { return "counter" }

func (c *counterJob) SnapshotTo(buf *bytes.Buffer) error {
	_, err := fmt.Fprintf(buf, "%d", c.counter)
	return err
}

func (c *counterJob) RestoreFrom(data []byte) error {
	_, err := fmt.Sscanf(string(data), "%d", &c.counter)
	return err
}

func (c *counterJob) ClearPartitions(parts []int) { c.cleared = append(c.cleared, parts...) }
func (c *counterJob) Compensate(lost []int) error { c.comps++; return nil }
func (c *counterJob) ResetToInitial() error       { c.counter = 0; c.resets++; return nil }

func (c *counterJob) step(*Context) (StepStats, error) {
	c.counter++
	return StepStats{Messages: int64(c.counter), Updates: 1}, nil
}

func newLoop(job *counterJob, target int) *Loop {
	return &Loop{
		Name:    "counter",
		Step:    job.step,
		Done:    func(committed int) bool { return committed >= target },
		Job:     job,
		Cluster: cluster.New(4, 4),
	}
}

func TestLoopRunsToTermination(t *testing.T) {
	job := &counterJob{}
	res, err := newLoop(job, 5).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 5 || res.Ticks != 5 || res.Failures != 0 {
		t.Fatalf("res = %+v", res)
	}
	if job.counter != 5 {
		t.Fatalf("job ran %d steps", job.counter)
	}
	if len(res.Samples) != 5 {
		t.Fatalf("%d samples", len(res.Samples))
	}
	for i, s := range res.Samples {
		if s.Tick != i || s.Superstep != i || s.Failed() {
			t.Fatalf("sample %d = %+v", i, s)
		}
	}
	if got := res.MessagesSeries(); got[0] != 1 || got[4] != 5 {
		t.Fatalf("messages series = %v", got)
	}
}

func TestLoopValidation(t *testing.T) {
	if _, err := (&Loop{}).Run(); err == nil {
		t.Fatal("empty loop accepted")
	}
	job := &counterJob{}
	l := newLoop(job, 1)
	l.Cluster = nil
	if _, err := l.Run(); err == nil {
		t.Fatal("missing cluster accepted")
	}
	l2 := newLoop(job, 1)
	l2.Job = nil
	if _, err := l2.Run(); err == nil {
		t.Fatal("missing job accepted")
	}
}

func TestLoopMaxTicks(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 1000)
	l.MaxTicks = 10
	_, err := l.Run()
	if err == nil || !strings.Contains(err.Error(), "10 superstep attempts") {
		t.Fatalf("err = %v", err)
	}
}

func TestStepErrorAborts(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 5)
	boom := errors.New("step exploded")
	l.Step = func(ctx *Context) (StepStats, error) {
		if ctx.Tick == 2 {
			return StepStats{}, boom
		}
		return job.step(ctx)
	}
	_, err := l.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestOptimisticFailureFlow(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 5)
	l.Policy = recovery.Optimistic{}
	l.Injector = failure.NewScripted(nil).At(2, 1)
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Optimistic recovery continues: still 5 ticks, one compensated.
	if res.Ticks != 5 || res.Failures != 1 {
		t.Fatalf("res = %+v", res)
	}
	if job.comps != 1 {
		t.Fatalf("compensations = %d", job.comps)
	}
	if len(job.cleared) == 0 {
		t.Fatal("lost partitions were not cleared before compensation")
	}
	s := res.Samples[2]
	if !s.Failed() || len(s.LostPartitions) == 0 || !strings.Contains(s.Recovery, "compensated") {
		t.Fatalf("failure sample = %+v", s)
	}
	if got := res.FailureTicks(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("failure ticks = %v", got)
	}
	// The worker is gone; a fresh one owns its partitions.
	if l.Cluster.IsAlive(1) {
		t.Fatal("failed worker still alive")
	}
	if len(l.Cluster.Workers()) != 4 {
		t.Fatalf("workers = %v", l.Cluster.Workers())
	}
}

func TestCheckpointFailureRollsBack(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 6)
	l.Policy = recovery.NewCheckpoint(2, checkpoint.NewMemoryStore())
	l.Injector = failure.NewScripted(nil).At(4, 0)
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Failure at superstep 4 rolls back to the snapshot taken after
	// superstep 3, re-executing superstep 4: one extra tick.
	if res.Supersteps != 6 {
		t.Fatalf("supersteps = %d", res.Supersteps)
	}
	if res.Ticks != 7 {
		t.Fatalf("ticks = %d, want 7 (one re-execution)", res.Ticks)
	}
	// The failed attempt's increment was rolled back with the restore,
	// so the final counter equals the committed supersteps.
	if job.counter != 6 {
		t.Fatalf("counter = %d", job.counter)
	}
	if job.comps != 0 {
		t.Fatal("rollback must not invoke compensation")
	}
	if !strings.Contains(res.Samples[4].Recovery, "rolled back") {
		t.Fatalf("recovery note = %q", res.Samples[4].Recovery)
	}
	if res.Overhead.Checkpoints == 0 {
		t.Fatal("overhead not reported")
	}
}

func TestRestartFailureRewindsToZero(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 4)
	l.Policy = recovery.Restart{}
	l.Injector = failure.NewScripted(nil).At(2, 0)
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 3 attempts wasted (supersteps 0..2), then 4 committed.
	if res.Ticks != 7 || res.Supersteps != 4 {
		t.Fatalf("res = %+v", res)
	}
	if job.resets != 1 {
		t.Fatalf("resets = %d", job.resets)
	}
}

func TestNonePolicyFailureAborts(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 5)
	l.Injector = failure.NewScripted(nil).At(1, 0)
	_, err := l.Run()
	if !errors.Is(err, recovery.ErrUnrecoverable) {
		t.Fatalf("err = %v", err)
	}
}

func TestOnSampleObservesEveryAttempt(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 3)
	var seen []int
	l.OnSample = func(s Sample) { seen = append(seen, s.Tick) }
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[2] != 2 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestExtraSeries(t *testing.T) {
	job := &counterJob{}
	l := newLoop(job, 3)
	l.Step = func(ctx *Context) (StepStats, error) {
		job.counter++
		return StepStats{Extra: map[string]float64{"l1": float64(10 - ctx.Tick)}}, nil
	}
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ExtraSeries("l1"); got[0] != 10 || got[2] != 8 {
		t.Fatalf("extra series = %v", got)
	}
}

func TestBulkDone(t *testing.T) {
	done := BulkDone(5, nil)
	if done(4) || !done(5) || !done(6) {
		t.Fatal("max-iteration logic wrong")
	}
	converged := false
	done = BulkDone(100, func(int) bool { return converged })
	if done(1) {
		t.Fatal("not converged yet")
	}
	converged = true
	if !done(1) {
		t.Fatal("convergence ignored")
	}
	// Convergence is never consulted before the first superstep.
	if done(0) {
		t.Fatal("converged before running anything")
	}
}

func TestDeltaDone(t *testing.T) {
	n := 3
	done := DeltaDone(func() int { return n })
	if done(0) {
		t.Fatal("non-empty workset terminated")
	}
	n = 0
	if !done(5) {
		t.Fatal("empty workset not terminated")
	}
}

func TestZeroStepLoopTerminatesImmediately(t *testing.T) {
	job := &counterJob{}
	res, err := newLoop(job, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks != 0 || job.counter != 0 {
		t.Fatalf("res = %+v", res)
	}
}
