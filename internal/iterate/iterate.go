// Package iterate drives iterative dataflow execution: it runs the
// loop body superstep by superstep, consults the failure injector,
// clears lost state partitions, lets the recovery policy decide where
// to resume (compensate / roll back / restart), and reports one sample
// per superstep attempt — exactly the per-iteration data points the
// demo GUI plots.
package iterate

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"optiflow/internal/clock"
	"optiflow/internal/cluster"
	"optiflow/internal/exec"
	"optiflow/internal/failure"
	"optiflow/internal/recovery"
	"optiflow/internal/supervise"
)

// StepStats is what one execution of the loop body reports.
type StepStats struct {
	// Messages counts records exchanged during the superstep — for the
	// demo's algorithms, candidate labels or rank contributions sent to
	// neighbors.
	Messages int64
	// Updates counts state entries changed by the superstep (label
	// updates, rank writes).
	Updates int64
	// Extra carries algorithm-specific series, e.g. the L1 norm of the
	// rank delta.
	Extra map[string]float64
}

// Context describes the superstep attempt the loop body is executing.
// The loop reuses one Context across attempts, so Step implementations
// must read it during the call and not retain the pointer.
type Context struct {
	// Superstep is the logical iteration number. After a rollback the
	// same superstep number is presented again on a later attempt.
	Superstep int
	// Tick counts attempts monotonically; the demo plots use ticks as
	// their x-axis so re-executed and compensated iterations show up.
	Tick int
	// Parallelism is the number of state partitions / parallel tasks.
	Parallelism int
	// Fault, when non-nil, schedules a mid-superstep worker crash for
	// this attempt: the loop body must hand it to the execution engine
	// (Prepared.RunWithFault) so the running plan aborts with a typed
	// *exec.WorkerFailure once the record threshold is crossed. Loop
	// bodies that ignore it (reference implementations, non-engine
	// steps) degrade gracefully to between-superstep semantics — the
	// loop kills the scheduled workers after the attempt commits.
	Fault *exec.FaultInjection
}

// Sample is the per-attempt data point handed to listeners.
type Sample struct {
	Tick      int
	Superstep int
	Stats     StepStats
	// FailedWorkers and LostPartitions are non-empty if a failure
	// struck during this attempt; Recovery describes the policy's
	// reaction.
	FailedWorkers  []int
	LostPartitions []int
	Recovery       string
	// Aborted reports that the failure struck mid-superstep: the
	// attempt's plan was torn down before committing, so Stats is zero
	// — the partial superstep's statistics are discarded, and the demo
	// plots show the tick as a truncated iteration. Aborted is only
	// ever true on samples where Failed() is also true.
	Aborted bool
	// Retries, Escalations, Degraded and RecoveryDuration are filled on
	// failed samples of supervised loops: acquire retries performed,
	// escalation-ladder rungs climbed, whether degraded-mode
	// repartitioning was needed, and the recovery's wall time.
	Retries          int
	Escalations      int
	Degraded         bool
	RecoveryDuration time.Duration
	Elapsed          time.Duration
}

// Failed reports whether a failure struck during this attempt.
func (s Sample) Failed() bool { return len(s.FailedWorkers) > 0 }

// Result summarises a finished loop.
type Result struct {
	// Supersteps is the number of logical supersteps committed when the
	// loop terminated.
	Supersteps int
	// Ticks is the number of superstep attempts executed, including
	// re-executions after rollbacks and restarts.
	Ticks int
	// Failures counts injected failure events.
	Failures int
	// TotalRetries and TotalEscalations accumulate the supervisor's
	// acquire retries and escalation-ladder climbs (zero on
	// unsupervised loops).
	TotalRetries     int
	TotalEscalations int
	// Samples holds one entry per attempt, in order.
	Samples []Sample
	// Elapsed is the total wall time of the loop.
	Elapsed time.Duration
	// Overhead is the fault-tolerance cost reported by the policy.
	Overhead recovery.Overhead
}

// MessagesSeries returns the per-tick message counts — the demo's
// bottom-right plot for Connected Components.
func (r *Result) MessagesSeries() []float64 {
	out := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		out[i] = float64(s.Stats.Messages)
	}
	return out
}

// ExtraSeries returns the per-tick values of a named extra statistic.
func (r *Result) ExtraSeries(name string) []float64 {
	out := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		out[i] = s.Stats.Extra[name]
	}
	return out
}

// FailureTicks returns the ticks at which failures struck.
func (r *Result) FailureTicks() []int {
	var out []int
	for _, s := range r.Samples {
		if s.Failed() {
			out = append(out, s.Tick)
		}
	}
	return out
}

// AbortedTicks returns the ticks whose attempts were aborted
// mid-superstep (a subset of FailureTicks).
func (r *Result) AbortedTicks() []int {
	var out []int
	for _, s := range r.Samples {
		if s.Aborted {
			out = append(out, s.Tick)
		}
	}
	return out
}

// DefaultMaxTicks bounds runaway loops.
const DefaultMaxTicks = 100000

// Loop is a configured iterative computation.
type Loop struct {
	// Name identifies the job (checkpoints, diagnostics).
	Name string
	// Step executes one superstep attempt: run the loop-body dataflow
	// and commit its outputs into the iteration state.
	Step func(ctx *Context) (StepStats, error)
	// Done reports, given the number of committed supersteps, whether
	// the iteration has terminated (empty workset for delta iterations,
	// max-iterations/convergence for bulk iterations). It is consulted
	// before every attempt.
	Done func(committed int) bool
	// Job exposes the iteration state to the recovery policy.
	Job recovery.Job
	// Policy is the fault-tolerance strategy (defaults to None).
	Policy recovery.Policy
	// Cluster models worker/partition placement. Required.
	Cluster cluster.Interface
	// Injector decides failures (defaults to no failures).
	Injector failure.Injector
	// Supervisor, if set, takes over the failure path: worker
	// replacement with retry/backoff against a bounded spare pool,
	// degraded-mode repartitioning, failure budgets, policy escalation
	// and recovery-during-recovery folding. Build it with supervise.New
	// over the same Cluster, Policy and Injector. When nil, failures
	// take the legacy path: unconditional replacement and a fatal error
	// if the policy cannot recover.
	Supervisor *supervise.Supervisor
	// OnSample, if set, observes every attempt's sample.
	OnSample func(Sample)
	// MaxTicks bounds the number of attempts (DefaultMaxTicks if zero).
	MaxTicks int
}

// Run executes the loop until Done or failure of the policy.
func (l *Loop) Run() (*Result, error) {
	if l.Step == nil || l.Done == nil {
		return nil, fmt.Errorf("iterate: loop %q needs Step and Done", l.Name)
	}
	if l.Cluster == nil {
		return nil, fmt.Errorf("iterate: loop %q needs a cluster", l.Name)
	}
	if l.Job == nil {
		return nil, fmt.Errorf("iterate: loop %q needs a job", l.Name)
	}
	policy := l.Policy
	if policy == nil {
		policy = recovery.None{}
	}
	injector := l.Injector
	if injector == nil {
		injector = failure.None{}
	}
	maxTicks := l.MaxTicks
	if maxTicks <= 0 {
		maxTicks = DefaultMaxTicks
	}

	if err := policy.Setup(l.Job); err != nil {
		return nil, fmt.Errorf("iterate: loop %q: policy setup: %w", l.Name, err)
	}

	res := &Result{Samples: make([]Sample, 0, 64)}
	start := clock.Now()
	superstep := 0
	// One Context is reused across attempts with its per-attempt fields
	// rewritten; Step implementations must not retain it past the call.
	ctx := &Context{Parallelism: l.Cluster.NumPartitions()}
	for tick := 0; ; tick++ {
		if l.Done(superstep) {
			break
		}
		if tick >= maxTicks {
			return nil, fmt.Errorf("iterate: loop %q exceeded %d superstep attempts without terminating", l.Name, maxTicks)
		}

		attemptStart := clock.Now()
		ctx.Superstep, ctx.Tick = superstep, tick

		// Arm a mid-superstep failure before the attempt starts: the
		// loop body passes ctx.Fault into the execution engine, which
		// aborts the running plan once the record threshold is crossed.
		ctx.Fault = nil
		var midWorkers []int
		if msi, ok := injector.(failure.MidStepInjector); ok {
			if ms, ok := msi.MidStepAt(superstep, tick, l.Cluster.Workers()); ok && len(ms.Workers) > 0 {
				midWorkers = ms.Workers
				var parts []int
				for _, w := range midWorkers {
					parts = append(parts, l.Cluster.PartitionsOf(w)...)
				}
				ctx.Fault = &exec.FaultInjection{
					Workers: midWorkers, Partitions: parts, AfterRecords: ms.AfterRecords,
				}
			}
		}

		stats, err := l.Step(ctx)
		var wf *exec.WorkerFailure
		if err != nil && !errors.As(err, &wf) {
			return nil, fmt.Errorf("iterate: loop %q superstep %d (tick %d): %w", l.Name, superstep, tick, err)
		}

		sample := Sample{Tick: tick, Superstep: superstep}
		var failed []int
		if wf != nil {
			// The engine aborted the attempt mid-superstep. The partial
			// superstep is void: its stats are discarded (Stats stays
			// zero) and the superstep is not committed.
			sample.Aborted = true
			failed = wf.Workers
		} else {
			sample.Stats = stats
			failed = injector.FailuresAt(superstep, tick, l.Cluster.Workers())
			if len(midWorkers) > 0 {
				// A scheduled mid-step failure the plan outran (or that
				// the loop body ignored): the workers still die, at the
				// superstep boundary.
				failed = mergeWorkers(failed, midWorkers)
			}
		}

		// Only workers that actually die trigger recovery. Injectors may
		// name workers that are already dead; acting on those would
		// acquire a spurious spare worker and record a phantom failure.
		var died, lost []int
		for _, w := range failed {
			if !l.Cluster.IsAlive(w) {
				continue
			}
			died = append(died, w)
			lost = append(lost, l.Cluster.Fail(w)...)
		}

		// With the attempt committed and nobody dead, run the policy's
		// superstep epilogue (e.g. the periodic checkpoint snapshot). A
		// worker dying inside the epilogue joins the recovery path below
		// — the superstep itself committed, but the dead worker's state
		// is gone, and the policy decides where to resume exactly as for
		// a failure inside the attempt.
		epilogueFailed := false
		if len(died) == 0 && !sample.Aborted {
			if err := policy.AfterSuperstep(l.Job, superstep); err != nil {
				var pwf *exec.WorkerFailure
				if !errors.As(err, &pwf) {
					return nil, fmt.Errorf("iterate: loop %q superstep %d: %w", l.Name, superstep, err)
				}
				epilogueFailed = true
				for _, w := range pwf.Workers {
					if !l.Cluster.IsAlive(w) {
						continue
					}
					died = append(died, w)
					lost = append(lost, l.Cluster.Fail(w)...)
				}
			}
		}

		switch {
		case len(died) > 0 && l.Supervisor != nil:
			res.Failures++
			out, err := l.Supervisor.Recover(l.Job, recovery.Failure{
				Superstep: superstep, Tick: tick,
				Workers: died, LostPartitions: lost,
			})
			if err != nil {
				return nil, fmt.Errorf("iterate: loop %q superstep %d: %w", l.Name, superstep, err)
			}
			res.Failures += out.FoldedFailures
			res.TotalRetries += out.Retries
			res.TotalEscalations += out.Escalations
			sample.FailedWorkers = out.Workers
			sample.LostPartitions = out.LostPartitions
			sample.Recovery = out.Description
			sample.Retries = out.Retries
			sample.Escalations = out.Escalations
			sample.Degraded = out.Degraded
			sample.RecoveryDuration = out.Duration
			superstep = out.ResumeAt
		case len(died) > 0:
			res.Failures++
			l.Cluster.AcquireN(len(died))
			l.Job.ClearPartitions(lost)
			resumeAt, err := policy.OnFailure(l.Job, recovery.Failure{
				Superstep: superstep, Tick: tick,
				Workers: died, LostPartitions: lost,
			})
			if err != nil {
				return nil, fmt.Errorf("iterate: loop %q superstep %d: %w", l.Name, superstep, err)
			}
			sample.FailedWorkers = died
			sample.LostPartitions = lost
			sample.Recovery = describeRecovery(policy.PolicyName(), superstep, resumeAt)
			superstep = resumeAt
		case sample.Aborted || epilogueFailed:
			// Aborted attempt whose scheduled victims were already dead,
			// or an epilogue failure naming only already-dead workers:
			// nothing further was lost — retry the superstep.
		default:
			superstep++
			if l.Supervisor != nil {
				l.Supervisor.NoteCommitted(superstep)
			}
		}

		sample.Elapsed = clock.Since(attemptStart)
		res.Samples = append(res.Samples, sample)
		res.Ticks++
		if l.OnSample != nil {
			l.OnSample(sample)
		}
	}

	// Fence for policies with background work (the async checkpoint
	// pipeline): normal termination must not leave an epoch half-written
	// — await the in-flight commits (or surface their failure) before
	// declaring the run done.
	if fin, ok := policy.(recovery.Finisher); ok {
		if err := fin.Finish(l.Job); err != nil {
			return nil, fmt.Errorf("iterate: loop %q: policy finish: %w", l.Name, err)
		}
	}

	res.Supersteps = superstep
	res.Elapsed = clock.Since(start)
	res.Overhead = policy.Overhead()
	return res, nil
}

// mergeWorkers unions two worker lists, deduplicated and sorted.
func mergeWorkers(a, b []int) []int {
	set := make(map[int]bool, len(a)+len(b))
	for _, w := range a {
		set[w] = true
	}
	for _, w := range b {
		set[w] = true
	}
	out := make([]int, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

func describeRecovery(policy string, at, resumeAt int) string {
	switch {
	case resumeAt == at+1:
		return fmt.Sprintf("%s: compensated, continuing with superstep %d", policy, resumeAt)
	case resumeAt == 0:
		return fmt.Sprintf("%s: rewound to superstep 0", policy)
	default:
		return fmt.Sprintf("%s: rolled back to superstep %d", policy, resumeAt)
	}
}

// BulkDone returns a termination predicate for bulk iterations: stop
// after maxIterations committed supersteps, or earlier once converged
// (if non-nil) reports true.
func BulkDone(maxIterations int, converged func(committed int) bool) func(int) bool {
	return func(committed int) bool {
		if committed >= maxIterations {
			return true
		}
		return converged != nil && committed > 0 && converged(committed)
	}
}

// DeltaDone returns a termination predicate for delta iterations: stop
// once the workset is empty.
func DeltaDone(worksetLen func() int) func(int) bool {
	return func(int) bool { return worksetLen() == 0 }
}
