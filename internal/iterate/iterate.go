// Package iterate drives iterative dataflow execution: it runs the
// loop body superstep by superstep, consults the failure injector,
// clears lost state partitions, lets the recovery policy decide where
// to resume (compensate / roll back / restart), and reports one sample
// per superstep attempt — exactly the per-iteration data points the
// demo GUI plots.
package iterate

import (
	"fmt"
	"time"

	"optiflow/internal/clock"
	"optiflow/internal/cluster"
	"optiflow/internal/failure"
	"optiflow/internal/recovery"
)

// StepStats is what one execution of the loop body reports.
type StepStats struct {
	// Messages counts records exchanged during the superstep — for the
	// demo's algorithms, candidate labels or rank contributions sent to
	// neighbors.
	Messages int64
	// Updates counts state entries changed by the superstep (label
	// updates, rank writes).
	Updates int64
	// Extra carries algorithm-specific series, e.g. the L1 norm of the
	// rank delta.
	Extra map[string]float64
}

// Context describes the superstep attempt the loop body is executing.
// The loop reuses one Context across attempts, so Step implementations
// must read it during the call and not retain the pointer.
type Context struct {
	// Superstep is the logical iteration number. After a rollback the
	// same superstep number is presented again on a later attempt.
	Superstep int
	// Tick counts attempts monotonically; the demo plots use ticks as
	// their x-axis so re-executed and compensated iterations show up.
	Tick int
	// Parallelism is the number of state partitions / parallel tasks.
	Parallelism int
}

// Sample is the per-attempt data point handed to listeners.
type Sample struct {
	Tick      int
	Superstep int
	Stats     StepStats
	// FailedWorkers and LostPartitions are non-empty if a failure
	// struck during this attempt; Recovery describes the policy's
	// reaction.
	FailedWorkers  []int
	LostPartitions []int
	Recovery       string
	Elapsed        time.Duration
}

// Failed reports whether a failure struck during this attempt.
func (s Sample) Failed() bool { return len(s.FailedWorkers) > 0 }

// Result summarises a finished loop.
type Result struct {
	// Supersteps is the number of logical supersteps committed when the
	// loop terminated.
	Supersteps int
	// Ticks is the number of superstep attempts executed, including
	// re-executions after rollbacks and restarts.
	Ticks int
	// Failures counts injected failure events.
	Failures int
	// Samples holds one entry per attempt, in order.
	Samples []Sample
	// Elapsed is the total wall time of the loop.
	Elapsed time.Duration
	// Overhead is the fault-tolerance cost reported by the policy.
	Overhead recovery.Overhead
}

// MessagesSeries returns the per-tick message counts — the demo's
// bottom-right plot for Connected Components.
func (r *Result) MessagesSeries() []float64 {
	out := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		out[i] = float64(s.Stats.Messages)
	}
	return out
}

// ExtraSeries returns the per-tick values of a named extra statistic.
func (r *Result) ExtraSeries(name string) []float64 {
	out := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		out[i] = s.Stats.Extra[name]
	}
	return out
}

// FailureTicks returns the ticks at which failures struck.
func (r *Result) FailureTicks() []int {
	var out []int
	for _, s := range r.Samples {
		if s.Failed() {
			out = append(out, s.Tick)
		}
	}
	return out
}

// DefaultMaxTicks bounds runaway loops.
const DefaultMaxTicks = 100000

// Loop is a configured iterative computation.
type Loop struct {
	// Name identifies the job (checkpoints, diagnostics).
	Name string
	// Step executes one superstep attempt: run the loop-body dataflow
	// and commit its outputs into the iteration state.
	Step func(ctx *Context) (StepStats, error)
	// Done reports, given the number of committed supersteps, whether
	// the iteration has terminated (empty workset for delta iterations,
	// max-iterations/convergence for bulk iterations). It is consulted
	// before every attempt.
	Done func(committed int) bool
	// Job exposes the iteration state to the recovery policy.
	Job recovery.Job
	// Policy is the fault-tolerance strategy (defaults to None).
	Policy recovery.Policy
	// Cluster models worker/partition placement. Required.
	Cluster *cluster.Cluster
	// Injector decides failures (defaults to no failures).
	Injector failure.Injector
	// OnSample, if set, observes every attempt's sample.
	OnSample func(Sample)
	// MaxTicks bounds the number of attempts (DefaultMaxTicks if zero).
	MaxTicks int
}

// Run executes the loop until Done or failure of the policy.
func (l *Loop) Run() (*Result, error) {
	if l.Step == nil || l.Done == nil {
		return nil, fmt.Errorf("iterate: loop %q needs Step and Done", l.Name)
	}
	if l.Cluster == nil {
		return nil, fmt.Errorf("iterate: loop %q needs a cluster", l.Name)
	}
	if l.Job == nil {
		return nil, fmt.Errorf("iterate: loop %q needs a job", l.Name)
	}
	policy := l.Policy
	if policy == nil {
		policy = recovery.None{}
	}
	injector := l.Injector
	if injector == nil {
		injector = failure.None{}
	}
	maxTicks := l.MaxTicks
	if maxTicks <= 0 {
		maxTicks = DefaultMaxTicks
	}

	if err := policy.Setup(l.Job); err != nil {
		return nil, fmt.Errorf("iterate: loop %q: policy setup: %w", l.Name, err)
	}

	res := &Result{Samples: make([]Sample, 0, 64)}
	start := clock.Now()
	superstep := 0
	// One Context is reused across attempts with its per-attempt fields
	// rewritten; Step implementations must not retain it past the call.
	ctx := &Context{Parallelism: l.Cluster.NumPartitions()}
	for tick := 0; ; tick++ {
		if l.Done(superstep) {
			break
		}
		if tick >= maxTicks {
			return nil, fmt.Errorf("iterate: loop %q exceeded %d superstep attempts without terminating", l.Name, maxTicks)
		}

		attemptStart := clock.Now()
		ctx.Superstep, ctx.Tick = superstep, tick
		stats, err := l.Step(ctx)
		if err != nil {
			return nil, fmt.Errorf("iterate: loop %q superstep %d (tick %d): %w", l.Name, superstep, tick, err)
		}

		sample := Sample{Tick: tick, Superstep: superstep, Stats: stats}
		failed := injector.FailuresAt(superstep, tick, l.Cluster.Workers())
		if len(failed) > 0 {
			res.Failures++
			var lost []int
			for _, w := range failed {
				lost = append(lost, l.Cluster.Fail(w)...)
			}
			l.Cluster.Acquire()
			l.Job.ClearPartitions(lost)
			resumeAt, err := policy.OnFailure(l.Job, recovery.Failure{
				Superstep: superstep, Tick: tick,
				Workers: failed, LostPartitions: lost,
			})
			if err != nil {
				return nil, fmt.Errorf("iterate: loop %q superstep %d: %w", l.Name, superstep, err)
			}
			sample.FailedWorkers = failed
			sample.LostPartitions = lost
			sample.Recovery = describeRecovery(policy.PolicyName(), superstep, resumeAt)
			superstep = resumeAt
		} else {
			if err := policy.AfterSuperstep(l.Job, superstep); err != nil {
				return nil, fmt.Errorf("iterate: loop %q superstep %d: %w", l.Name, superstep, err)
			}
			superstep++
		}

		sample.Elapsed = clock.Since(attemptStart)
		res.Samples = append(res.Samples, sample)
		res.Ticks++
		if l.OnSample != nil {
			l.OnSample(sample)
		}
	}

	res.Supersteps = superstep
	res.Elapsed = clock.Since(start)
	res.Overhead = policy.Overhead()
	return res, nil
}

func describeRecovery(policy string, at, resumeAt int) string {
	switch {
	case resumeAt == at+1:
		return fmt.Sprintf("%s: compensated, continuing with superstep %d", policy, resumeAt)
	case resumeAt == 0:
		return fmt.Sprintf("%s: rewound to superstep 0", policy)
	default:
		return fmt.Sprintf("%s: rolled back to superstep %d", policy, resumeAt)
	}
}

// BulkDone returns a termination predicate for bulk iterations: stop
// after maxIterations committed supersteps, or earlier once converged
// (if non-nil) reports true.
func BulkDone(maxIterations int, converged func(committed int) bool) func(int) bool {
	return func(committed int) bool {
		if committed >= maxIterations {
			return true
		}
		return converged != nil && committed > 0 && converged(committed)
	}
}

// DeltaDone returns a termination predicate for delta iterations: stop
// once the workset is empty.
func DeltaDone(worksetLen func() int) func(int) bool {
	return func(int) bool { return worksetLen() == 0 }
}
