package iterate_test

// External test package: these properties drive the real CC / PageRank
// workloads (which import iterate) against the full policy matrix, so
// they cannot live in package iterate itself.

import (
	"fmt"
	"testing"
	"testing/quick"

	"optiflow/internal/algo/cc"
	"optiflow/internal/algo/pagerank"
	"optiflow/internal/algo/ref"
	"optiflow/internal/checkpoint"
	"optiflow/internal/failure"
	"optiflow/internal/graph"
	"optiflow/internal/graph/gen"
	"optiflow/internal/recovery"
)

// committedEpochObserver wraps the async checkpoint policy and checks
// the fence invariant at every failure: the superstep the policy
// resumes at is exactly one past a fully committed epoch in the store
// (or zero when nothing committed yet). A torn or merely in-flight
// epoch must never be the restore target.
type committedEpochObserver struct {
	inner recovery.Policy
	store checkpoint.Store
	name  string
	// violation records the first broken invariant; the property reads
	// it after the run (quick.Check wants a bool, not t.Fatal).
	violation error
	failures  int
}

func (o *committedEpochObserver) PolicyName() string { return o.inner.PolicyName() }
func (o *committedEpochObserver) Setup(job recovery.Job) error {
	o.name = job.Name()
	return o.inner.Setup(job)
}
func (o *committedEpochObserver) AfterSuperstep(job recovery.Job, superstep int) error {
	return o.inner.AfterSuperstep(job, superstep)
}
func (o *committedEpochObserver) Overhead() recovery.Overhead { return o.inner.Overhead() }

// Finish must forward explicitly: iterate.Loop type-asserts the policy
// to recovery.Finisher, and o.inner is an AsyncCheckpoint with
// background commits to drain at normal termination.
func (o *committedEpochObserver) Finish(job recovery.Job) error {
	if fin, ok := o.inner.(recovery.Finisher); ok {
		return fin.Finish(job)
	}
	return nil
}

func (o *committedEpochObserver) OnFailure(job recovery.Job, f recovery.Failure) (int, error) {
	o.failures++
	resumeAt, err := o.inner.OnFailure(job, f)
	if err != nil {
		return resumeAt, err
	}
	// LoadCommitted only ever surfaces epochs whose commit record and
	// every referenced partition blob are durable, so comparing against
	// it is the torn-state check.
	rec, _, ok, lerr := checkpoint.LoadCommitted(o.store, o.name)
	if lerr != nil {
		o.violation = fmt.Errorf("superstep %d: load committed: %v", f.Superstep, lerr)
		return resumeAt, err
	}
	switch {
	case !ok && resumeAt != 0:
		o.violation = fmt.Errorf("superstep %d: resumed at %d with no committed epoch", f.Superstep, resumeAt)
	case ok && resumeAt != rec.Superstep+1:
		o.violation = fmt.Errorf("superstep %d: resumed at %d, committed epoch is superstep %d",
			f.Superstep, resumeAt, rec.Superstep)
	case ok && resumeAt > f.Superstep+1:
		o.violation = fmt.Errorf("superstep %d: resumed in the future at %d", f.Superstep, resumeAt)
	}
	return resumeAt, err
}

// asyncPolicies builds the policy matrix for one trial: the three
// synchronous baselines plus the async pipeline (plain and incremental),
// each async variant wrapped in the committed-epoch observer. Policies
// are single-use — build a fresh matrix per trial.
func asyncPolicies(par int) (policies []recovery.Policy, observers []*committedEpochObserver, names []string) {
	observe := func(c *recovery.AsyncCheckpoint, store checkpoint.Store) recovery.Policy {
		o := &committedEpochObserver{inner: c, store: store}
		observers = append(observers, o)
		return o
	}
	asyncStore := checkpoint.NewMemoryStore()
	incrStore := checkpoint.NewMemoryStore()
	incr := recovery.NewAsyncCheckpoint(1, incrStore, par)
	incr.Incremental = true
	policies = []recovery.Policy{
		recovery.Optimistic{},
		recovery.NewCheckpoint(2, checkpoint.NewMemoryStore()),
		recovery.Restart{},
		observe(recovery.NewAsyncCheckpoint(1, asyncStore, par), asyncStore),
		observe(incr, incrStore),
	}
	names = []string{"optimistic", "checkpoint", "restart", "async", "async-incremental"}
	return policies, observers, names
}

// Property: with the async checkpoint interval at 1, every superstep
// barrier leaves an encode/commit racing the next superstep, so any
// injected failure lands while a checkpoint is in flight. Under every
// policy the run must still terminate with the union-find ground truth,
// and the async policies must only ever restore committed epochs.
func TestAsyncCheckpointFailuresReachGroundTruth_CC(t *testing.T) {
	asyncFailures := 0
	f := func(seed int64, probRaw uint8) bool {
		prob := float64(probRaw%45)/100.0 + 0.05
		g := gen.Components(3, 30, 0.08, seed)
		truth := ref.ConnectedComponents(g)

		policies, observers, names := asyncPolicies(4)
		for i, pol := range policies {
			out, err := cc.Run(g, cc.Options{
				Parallelism: 4,
				Policy:      pol,
				Injector:    failure.NewRandom(prob, seed+int64(i), 3),
				MaxTicks:    2000,
			})
			if err != nil {
				t.Logf("seed %d policy %s: %v", seed, names[i], err)
				return false
			}
			if !componentsEqual(out.Components, truth) {
				t.Logf("seed %d policy %s: wrong components", seed, names[i])
				return false
			}
		}
		for _, o := range observers {
			asyncFailures += o.failures
			if o.violation != nil {
				t.Logf("seed %d: %v", seed, o.violation)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
	// The property is vacuous if the schedule never actually struck the
	// async pipeline while epochs were in flight.
	if asyncFailures == 0 {
		t.Fatal("no failures hit the async checkpoint policies across all trials")
	}
}

// Property: same matrix for PageRank — the power-iteration ground truth
// is reached within tight L1 distance under every policy, failures
// racing in-flight async epochs included.
func TestAsyncCheckpointFailuresReachGroundTruth_PageRank(t *testing.T) {
	asyncFailures := 0
	f := func(seed int64, probRaw uint8) bool {
		prob := float64(probRaw%40)/100.0 + 0.05
		g := gen.Twitter(200, seed)
		truth, _ := ref.PageRank(g, ref.PageRankOptions{})

		policies, observers, names := asyncPolicies(4)
		for i, pol := range policies {
			out, err := pagerank.Run(g, pagerank.Options{
				Parallelism:   4,
				MaxIterations: 200,
				Epsilon:       1e-9,
				Policy:        pol,
				Injector:      failure.NewRandom(prob, seed+int64(i), 3),
				MaxTicks:      2000,
			})
			if err != nil {
				t.Logf("seed %d policy %s: %v", seed, names[i], err)
				return false
			}
			if l1 := ref.L1(out.Ranks, truth); l1 > 1e-6 {
				t.Logf("seed %d policy %s: L1 to truth %.2e", seed, names[i], l1)
				return false
			}
		}
		for _, o := range observers {
			asyncFailures += o.failures
			if o.violation != nil {
				t.Logf("seed %d: %v", seed, o.violation)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
	if asyncFailures == 0 {
		t.Fatal("no failures hit the async checkpoint policies across all trials")
	}
}

func componentsEqual(got, want map[graph.VertexID]graph.VertexID) bool {
	if len(got) != len(want) {
		return false
	}
	for v, c := range want {
		if got[v] != c {
			return false
		}
	}
	return true
}
