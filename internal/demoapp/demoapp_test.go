package demoapp

import (
	"strings"
	"testing"
)

func TestCCRunProducesFramesAndStats(t *testing.T) {
	out, err := Run(Config{Mode: ModeCC, Failures: map[int][]int{2: {1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Frames) < 4 {
		t.Fatalf("only %d frames", len(out.Frames))
	}
	// Frame 0 is the initial state, before any superstep.
	if out.Frames[0].Tick != -1 || !strings.Contains(out.Frames[0].Graph, "initial state") {
		t.Fatalf("frame 0 = %+v", out.Frames[0])
	}
	if !strings.Contains(out.Summary, "CORRECT") {
		t.Fatalf("summary = %q", out.Summary)
	}
	var failureFrame *Frame
	for i := range out.Frames {
		if out.Frames[i].Failure != "" {
			failureFrame = &out.Frames[i]
		}
	}
	if failureFrame == nil {
		t.Fatal("no failure frame recorded")
	}
	if !strings.Contains(failureFrame.Failure, "compensated") {
		t.Fatalf("failure note = %q", failureFrame.Failure)
	}
	if !strings.Contains(failureFrame.Graph, "✗") {
		t.Fatal("lost vertices not highlighted in failure frame")
	}
	if out.Stats.Series("converged-vertices") == nil || out.Stats.Series("messages") == nil {
		t.Fatal("stat series missing")
	}
	if got := out.Stats.FailureTicks(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("failure ticks = %v", got)
	}
}

func TestPRRunProducesL1Series(t *testing.T) {
	out, err := Run(Config{Mode: ModePageRank, Failures: map[int][]int{4: {1}}, PRIterations: 12})
	if err != nil {
		t.Fatal(err)
	}
	l1 := out.Stats.Series("l1-delta")
	if len(l1) != 12 {
		t.Fatalf("l1 series has %d points", len(l1))
	}
	if l1[5] <= l1[4] {
		t.Fatalf("expected L1 spike after failure: %v", l1[3:7])
	}
	if !strings.Contains(out.Summary, "CORRECT") {
		t.Fatalf("summary = %q", out.Summary)
	}
}

func TestLargeGraphSkipsGraphFrames(t *testing.T) {
	out, err := Run(Config{Mode: ModeCC, Large: true, LargeSize: 1500})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range out.Frames {
		if strings.Contains(f.Graph, "[") && strings.Contains(f.Graph, "·") {
			t.Fatal("large graph should not render graph frames")
		}
	}
	if !strings.Contains(out.Summary, "CORRECT") {
		t.Fatalf("summary = %q", out.Summary)
	}
}

func TestPlotsRender(t *testing.T) {
	out, err := Run(Config{Mode: ModeCC, Failures: map[int][]int{1: {0}}})
	if err != nil {
		t.Fatal(err)
	}
	plots := out.Plots()
	if !strings.Contains(plots, "vertices converged") || !strings.Contains(plots, "messages") {
		t.Fatalf("plots missing panes:\n%s", plots)
	}
	if !strings.Contains(plots, "!") {
		t.Fatal("failure marker missing from plots")
	}

	pr, err := Run(Config{Mode: ModePageRank, PRIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pr.Plots(), "L1 norm") {
		t.Fatal("PR plots missing L1 pane")
	}
}

func TestShellScriptedSession(t *testing.T) {
	var out strings.Builder
	sh := NewShell(strings.NewReader(""), &out, false)
	cmds := []string{
		"help", "status", "cc", "fail 3 1", "failures", "run", "step", "back",
		"plots", "explain", "pagerank", "explain", "small", "large 1200", "status",
	}
	for _, c := range cmds {
		if !sh.Execute(c) {
			t.Fatalf("command %q quit the shell", c)
		}
	}
	if sh.Execute("quit") {
		t.Fatal("quit did not quit")
	}
	text := out.String()
	for _, want := range []string{
		"commands (the GUI's tabs and buttons)",
		"scheduled: worker 1 fails in iteration 3",
		"iteration 3",
		"CORRECT",
		"vertices converged",
		"fix-components",
		"fix-ranks",
		"Twitter-like graph, 1200 vertices",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("session output missing %q", want)
		}
	}
}

func TestShellRejectsBadInput(t *testing.T) {
	var out strings.Builder
	sh := NewShell(strings.NewReader(""), &out, false)
	for _, c := range []string{"fail", "fail x y", "fail 0 0", "bogus-command"} {
		if !sh.Execute(c) {
			t.Fatalf("%q quit the shell", c)
		}
	}
	text := out.String()
	if !strings.Contains(text, "usage: fail") || !strings.Contains(text, "unknown command") {
		t.Fatalf("error guidance missing:\n%s", text)
	}
}

func TestShellStepAndBackBounds(t *testing.T) {
	var out strings.Builder
	sh := NewShell(strings.NewReader(""), &out, false)
	sh.Execute("cc")
	sh.Execute("run")
	sh.Execute("back") // already at frame 0 after run rewinds cursor
	for i := 0; i < 100; i++ {
		sh.Execute("step")
	}
	if !strings.Contains(out.String(), "already at the last iteration") {
		t.Fatal("step bound missing")
	}
}

func TestModeString(t *testing.T) {
	if ModeCC.String() != "connected-components" || ModePageRank.String() != "pagerank" {
		t.Fatal("mode names changed")
	}
}

func TestANSIToHTML(t *testing.T) {
	in := "plain \x1b[38;5;196mred\x1b[0m and \x1b[1mbold\x1b[0m <escaped>"
	out := ansiToHTML(in)
	for _, want := range []string{
		`<span style="color:#ff0000">red</span>`,
		`<span style="font-weight:bold">bold</span>`,
		"&lt;escaped&gt;",
		"plain ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ansiToHTML missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b") {
		t.Fatal("escape codes leaked")
	}
	// Unclosed span at end of string gets closed.
	if got := ansiToHTML("\x1b[1mforever"); !strings.HasSuffix(got, "</span>") {
		t.Fatalf("unclosed span: %q", got)
	}
}

func TestXterm256Mapping(t *testing.T) {
	cases := map[string]string{
		"0":   "#000000",
		"15":  "#ffffff",
		"16":  "#000000", // cube origin
		"196": "#ff0000", // pure red in the cube
		"46":  "#00ff00",
		"21":  "#0000ff",
		"232": "#080808", // first gray
		"255": "#eeeeee", // last gray
		"bad": "#ffffff",
	}
	for idx, want := range cases {
		if got := xterm256(idx); got != want {
			t.Fatalf("xterm256(%s) = %s, want %s", idx, got, want)
		}
	}
}

func TestHTMLReport(t *testing.T) {
	out, err := Run(Config{Mode: ModeCC, Failures: map[int][]int{2: {1}}, Color: true})
	if err != nil {
		t.Fatal(err)
	}
	html := out.HTMLReport()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"connected-components",
		"<svg", "</svg>",
		"class=\"failure\"",
		"class=\"summary\"",
		"CORRECT",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("HTML report missing %q", want)
		}
	}
	if strings.Contains(html, "\x1b") {
		t.Fatal("ANSI escapes leaked into HTML")
	}
	if strings.Count(html, "<svg") != 2 {
		t.Fatal("want both statistics panes as SVG")
	}
}

// TestFaultMatrix is the CI fault-injection smoke matrix: both demo
// algorithms under every recovery policy with a scripted mid-step
// failure (plus a boundary failure), run under -race in CI. The three
// recovering policies must converge to the correct result and render
// the aborted tick; the "none" policy must fail loudly, not hang or
// corrupt state.
func TestFaultMatrix(t *testing.T) {
	for _, mode := range []Mode{ModeCC, ModePageRank} {
		for _, policy := range []string{"optimistic", "checkpoint", "async-checkpoint", "restart", "none"} {
			t.Run(mode.String()+"/"+policy, func(t *testing.T) {
				// The boundary failure strikes at superstep 0 so it fires
				// under every policy (the small graph can converge before a
				// late superstep is ever reached after a rollback).
				cfg := Config{
					Mode:                mode,
					Policy:              policy,
					Failures:            map[int][]int{0: {0}},
					MidStepFailures:     map[int][]int{2: {1}},
					MidStepAfterRecords: 4,
					NewCluster:          testClusterFactory(t),
				}
				out, err := Run(cfg)
				if policy == "none" {
					if err == nil {
						t.Fatal("policy none should abort on the first failure")
					}
					return
				}
				if err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(out.Summary, "CORRECT") {
					t.Fatalf("summary = %q", out.Summary)
				}
				if got := out.Stats.AbortedTicks(); len(got) != 1 {
					t.Fatalf("aborted ticks = %v, want exactly one mid-step abort", got)
				}
				if len(out.Stats.FailureTicks()) != 2 {
					t.Fatalf("failure ticks = %v, want 2", out.Stats.FailureTicks())
				}
				aborted := 0
				for _, f := range out.Frames {
					if f.Aborted {
						aborted++
						if !strings.Contains(f.Failure, "mid-iteration abort") {
							t.Fatalf("aborted frame failure text = %q", f.Failure)
						}
						if !strings.Contains(f.Status, "aborted mid-iteration") {
							t.Fatalf("aborted frame status = %q", f.Status)
						}
					}
				}
				if aborted != 1 {
					t.Fatalf("aborted frames = %d, want 1", aborted)
				}
			})
		}
	}
}

func TestHTMLReportMarksAbortedFrames(t *testing.T) {
	out, err := Run(Config{
		Mode:                ModeCC,
		MidStepFailures:     map[int][]int{1: {1}},
		MidStepAfterRecords: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	html := out.HTMLReport()
	if !strings.Contains(html, "⛔") {
		t.Fatal("aborted frame not marked in HTML report")
	}
	if !strings.Contains(html, "optimistic recovery") {
		t.Fatal("policy name missing from HTML report header")
	}
}

func TestShellMidfailAndPolicyCommands(t *testing.T) {
	var sb strings.Builder
	s := NewShell(strings.NewReader(""), &sb, false)
	if !s.Execute("policy checkpoint") {
		t.Fatal("policy command quit the shell")
	}
	if !s.Execute("midfail 2 1") {
		t.Fatal("midfail command quit the shell")
	}
	if !s.Execute("failures") || !s.Execute("run") {
		t.Fatal("run quit the shell")
	}
	outStr := sb.String()
	if !strings.Contains(outStr, "recovery policy: checkpoint") {
		t.Fatalf("policy feedback missing: %q", outStr)
	}
	if !strings.Contains(outStr, "mid-step") {
		t.Fatalf("midfail schedule missing from failures listing: %q", outStr)
	}
	if !strings.Contains(outStr, "⛔") {
		t.Fatalf("aborted frame marker missing from playback: %q", outStr)
	}
	if !strings.Contains(outStr, "CORRECT") {
		t.Fatalf("run did not report a correct result: %q", outStr)
	}
}

func TestShellSparesAndRecfailCommands(t *testing.T) {
	var sb strings.Builder
	s := NewShell(strings.NewReader(""), &sb, false)
	for _, cmd := range []string{"policy none", "spares 0", "fail 3 1", "recfail 3 2", "status", "failures", "run"} {
		if !s.Execute(cmd) {
			t.Fatalf("command %q quit the shell", cmd)
		}
	}
	outStr := sb.String()
	if !strings.Contains(outStr, "supervision: on, 0 spare worker(s)") {
		t.Fatalf("spares feedback missing: %q", outStr)
	}
	if !strings.Contains(outStr, "supervision=on (spares=0)") {
		t.Fatalf("status line missing supervision: %q", outStr)
	}
	if !strings.Contains(outStr, "during recovery") {
		t.Fatalf("recfail schedule missing from failures listing: %q", outStr)
	}
	// Policy "none" under supervision escalates instead of aborting, and
	// the recovery effort shows up in the frame status line.
	if !strings.Contains(outStr, "escalation") {
		t.Fatalf("escalation missing from playback: %q", outStr)
	}
	if !strings.Contains(outStr, "degraded") {
		t.Fatalf("degraded-mode note missing from playback: %q", outStr)
	}
	if !strings.Contains(outStr, "CORRECT") {
		t.Fatalf("run did not report a correct result: %q", outStr)
	}
	// spares off returns to the legacy path, under which policy none
	// aborts the run on failure.
	if !s.Execute("spares off") || !s.Execute("run") {
		t.Fatal("post-off commands quit the shell")
	}
	if !strings.Contains(sb.String(), "error:") {
		t.Fatalf("unsupervised none policy should abort: %q", sb.String())
	}
}
