package demoapp

import (
	"fmt"
	"strings"
)

// HTMLReport renders a completed demo run as a self-contained HTML
// page: the summary, the two statistics panes as SVG, and every
// iteration frame with its ANSI colors converted to styled spans — a
// shareable record of what the GUI showed.
func (o *RunOutcome) HTMLReport() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>optiflow demo — %s</title>\n", htmlEscape(o.Config.Mode.String()))
	b.WriteString(`<style>
body { font-family: sans-serif; max-width: 980px; margin: 2em auto; color: #222; }
pre { background: #1c1c1c; color: #e8e8e8; padding: 12px; border-radius: 6px; overflow-x: auto; line-height: 1.25; }
.frame { margin-bottom: 1.5em; }
.failure { color: #c0392b; font-weight: bold; }
.summary { background: #eef6ee; border-left: 4px solid #2d7d46; padding: 8px 12px; }
svg { max-width: 100%; height: auto; border: 1px solid #ddd; margin: 6px 0; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>optiflow demonstration — %s</h1>\n", htmlEscape(o.Config.Mode.String()))
	input := "small hand-crafted graph"
	if o.Config.Large {
		input = fmt.Sprintf("synthetic Twitter-like graph (%d vertices)", o.Config.withDefaults().LargeSize)
	}
	fmt.Fprintf(&b, "<p>input: %s &middot; parallelism %d &middot; %s recovery</p>\n",
		htmlEscape(input), o.Config.withDefaults().Parallelism, htmlEscape(o.Config.withDefaults().Policy))
	fmt.Fprintf(&b, "<p class=\"summary\">%s</p>\n", htmlEscape(o.Summary))

	b.WriteString("<h2>Statistics</h2>\n")
	for _, chart := range o.Charts() {
		b.WriteString(chart.SVG())
	}

	b.WriteString("<h2>Iteration frames</h2>\n")
	for _, f := range o.Frames {
		b.WriteString(`<div class="frame">`)
		if f.Failure != "" {
			mark := "⚡"
			if f.Aborted {
				mark = "⛔"
			}
			fmt.Fprintf(&b, "<p class=\"failure\">%s %s</p>\n", mark, htmlEscape(f.Failure))
		}
		if f.Graph != "" {
			fmt.Fprintf(&b, "<pre>%s</pre>\n", ansiToHTML(f.Graph))
		} else {
			fmt.Fprintf(&b, "<p>%s</p>\n", htmlEscape(f.Status))
		}
		b.WriteString("</div>\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// ansiToHTML converts the subset of ANSI escapes the renderer emits
// (reset, bold, 256-color foreground) into inline-styled spans.
func ansiToHTML(s string) string {
	var b strings.Builder
	open := false
	i := 0
	flushText := func(text string) {
		b.WriteString(htmlEscape(text))
	}
	for i < len(s) {
		esc := strings.Index(s[i:], "\x1b[")
		if esc < 0 {
			flushText(s[i:])
			break
		}
		flushText(s[i : i+esc])
		i += esc + 2
		end := strings.IndexByte(s[i:], 'm')
		if end < 0 {
			break // malformed trailing escape
		}
		code := s[i : i+end]
		i += end + 1

		if open {
			b.WriteString("</span>")
			open = false
		}
		style := ansiStyle(code)
		if style != "" {
			fmt.Fprintf(&b, `<span style="%s">`, style)
			open = true
		}
	}
	if open {
		b.WriteString("</span>")
	}
	return b.String()
}

// ansiStyle translates an SGR parameter list into CSS ("" for reset).
func ansiStyle(code string) string {
	parts := strings.Split(code, ";")
	var css []string
	for j := 0; j < len(parts); j++ {
		switch parts[j] {
		case "", "0":
			// reset: contributes nothing
		case "1":
			css = append(css, "font-weight:bold")
		case "38":
			if j+2 < len(parts) && parts[j+1] == "5" {
				css = append(css, "color:"+xterm256(parts[j+2]))
				j += 2
			}
		}
	}
	return strings.Join(css, ";")
}

// xterm256 maps an xterm-256 color index to a CSS hex color.
func xterm256(idx string) string {
	var n int
	if _, err := fmt.Sscanf(idx, "%d", &n); err != nil || n < 0 || n > 255 {
		return "#ffffff"
	}
	switch {
	case n < 16:
		basic := [16]string{
			"#000000", "#cd0000", "#00cd00", "#cdcd00", "#0000ee", "#cd00cd", "#00cdcd", "#e5e5e5",
			"#7f7f7f", "#ff0000", "#00ff00", "#ffff00", "#5c5cff", "#ff00ff", "#00ffff", "#ffffff",
		}
		return basic[n]
	case n < 232:
		n -= 16
		steps := [6]int{0, 95, 135, 175, 215, 255}
		r := steps[n/36]
		g := steps[(n/6)%6]
		bl := steps[n%6]
		return fmt.Sprintf("#%02x%02x%02x", r, g, bl)
	default:
		v := 8 + (n-232)*10
		return fmt.Sprintf("#%02x%02x%02x", v, v, v)
	}
}

// HTMLEscape escapes text for HTML interpolation (exported for the
// browser UI).
func HTMLEscape(s string) string { return htmlEscape(s) }

// ANSIToHTML converts the renderer's ANSI colors to styled spans
// (exported for the browser UI).
func ANSIToHTML(s string) string { return ansiToHTML(s) }
