// Package demoapp is the demonstration itself (§3): the terminal
// equivalent of the paper's GUI. Attendees choose an algorithm tab
// (Connected Components for delta iterations, PageRank for bulk
// iterations), pick the small hand-crafted graph or the larger
// Twitter-like graph, schedule worker failures per iteration, and watch
// the algorithm converge: per-iteration graph frames (components
// colored / vertices sized by rank, lost vertices highlighted), plus
// the two statistics plots per algorithm, with play / pause / step /
// back navigation over the frame history.
package demoapp

import (
	"fmt"
	"math"
	"strings"

	"optiflow/internal/algo/cc"
	"optiflow/internal/algo/pagerank"
	"optiflow/internal/algo/ref"
	"optiflow/internal/checkpoint"
	"optiflow/internal/cluster"
	"optiflow/internal/failure"
	"optiflow/internal/graph"
	"optiflow/internal/graph/gen"
	"optiflow/internal/iterate"
	"optiflow/internal/metrics"
	"optiflow/internal/plot"
	"optiflow/internal/recovery"
	"optiflow/internal/supervise"
	"optiflow/internal/viz"
)

// Mode selects the algorithm tab.
type Mode int

// Algorithm tabs.
const (
	ModeCC Mode = iota
	ModePageRank
)

// String names the tab.
func (m Mode) String() string {
	if m == ModePageRank {
		return "pagerank"
	}
	return "connected-components"
}

// Config parameterises one demo run.
type Config struct {
	// Mode is the algorithm tab.
	Mode Mode
	// Large switches from the hand-crafted graph to the synthetic
	// Twitter-like graph (stats-only frames, like the paper's GUI).
	Large bool
	// LargeSize is the vertex count of the large graph (20000 if zero).
	LargeSize int
	// Parallelism is the task/partition count (4 if zero).
	Parallelism int
	// Seed drives the large-graph generator.
	Seed int64
	// Failures schedules worker failures per superstep (the GUI's
	// failure buttons). These strike at the superstep boundary.
	Failures map[int][]int
	// MidStepFailures schedules worker failures that strike while the
	// superstep's dataflow is still executing — the attendee pressing
	// the failure button mid-iteration. The attempt is aborted and
	// retried under the configured policy.
	MidStepFailures map[int][]int
	// MidStepAfterRecords is how many records a superstep processes
	// before a scheduled mid-step failure strikes (16 if zero).
	MidStepAfterRecords int64
	// Policy selects the recovery policy: "optimistic" (default),
	// "checkpoint", "async-checkpoint", "restart" or "none".
	Policy string
	// Supervised runs the iteration under the recovery supervisor: the
	// cluster gets a bounded spare pool (Spares), failures are healed
	// with retry/backoff and degraded-mode repartitioning, and policies
	// that cannot recover escalate instead of aborting the demo.
	Supervised bool
	// Spares bounds the spare pool when Supervised (negative =
	// unlimited; zero = no spares, every failure degrades the cluster).
	Spares int
	// FailureBudget is the supervisor's budget of consecutive discarded
	// attempts per superstep before escalating (supervisor default if
	// zero).
	FailureBudget int
	// DuringRecoveryFailures schedules workers to die while the
	// recovery for a failure at the keyed superstep is in flight —
	// requires Supervised.
	DuringRecoveryFailures map[int][]int
	// Color enables ANSI colors in frames.
	Color bool
	// PRIterations bounds PageRank supersteps (30 if zero).
	PRIterations int
	// NewCluster, when set, provisions the cluster backend the run
	// executes on — e.g. proc.Provision for a real multi-process
	// cluster whose Fail is a SIGKILL. It receives the worker and
	// partition counts and the supervision config (nil when not
	// Supervised), and its teardown runs when the demo run ends. When
	// nil the algorithms build the in-process simulation.
	NewCluster supervise.ClusterFactory
}

func (c Config) withDefaults() Config {
	if c.LargeSize == 0 {
		c.LargeSize = 20000
	}
	if c.Parallelism == 0 {
		c.Parallelism = 4
	}
	if c.Seed == 0 {
		c.Seed = 20150531 // SIGMOD'15 opening day
	}
	if c.PRIterations == 0 {
		c.PRIterations = 30
	}
	if c.MidStepAfterRecords == 0 {
		c.MidStepAfterRecords = 16
	}
	if c.Policy == "" {
		c.Policy = "optimistic"
	}
	return c
}

// policy maps the configured policy name to a recovery.Policy, also
// returning the checkpoint store (nil unless the policy snapshots) so
// the supervisor can escalate to the snapshots the policy wrote.
func (c Config) policy() (recovery.Policy, checkpoint.Store) {
	switch c.Policy {
	case "checkpoint":
		store := checkpoint.NewMemoryStore()
		return recovery.NewCheckpoint(1, store), store
	case "async-checkpoint":
		// The pipelined baseline: capture at the barrier, per-partition
		// encode + persist in the background, atomic epoch commit.
		store := checkpoint.NewMemoryStore()
		return recovery.NewAsyncCheckpoint(1, store, c.Parallelism), store
	case "restart":
		return recovery.Restart{}, nil
	case "none":
		return recovery.None{}, nil
	default:
		return recovery.Optimistic{}, nil
	}
}

// supervision builds the supervisor config for the run (nil when not
// Supervised).
func (c Config) supervision(store checkpoint.Store) *supervise.Config {
	if !c.Supervised {
		return nil
	}
	return &supervise.Config{
		Spares:        c.Spares,
		FailureBudget: c.FailureBudget,
		Store:         store,
	}
}

// provisionCluster builds the run's cluster backend via NewCluster. A
// nil cluster (and no-op teardown) means the algorithm constructs the
// in-process simulation itself.
func (c Config) provisionCluster(sup *supervise.Config) (cluster.Interface, func(), error) {
	if c.NewCluster == nil {
		return nil, func() {}, nil
	}
	return c.NewCluster(c.Parallelism, c.Parallelism, sup)
}

// injector builds the scripted injector from the boundary, mid-step and
// during-recovery failure schedules.
func (c Config) injector() failure.Injector {
	inj := failure.NewScripted(c.Failures)
	for superstep, workers := range c.MidStepFailures {
		inj.AtMidStep(superstep, c.MidStepAfterRecords, workers...)
	}
	for superstep, workers := range c.DuringRecoveryFailures {
		inj.AtDuringRecovery(superstep, workers...)
	}
	return inj
}

// netProbe returns a per-tick sampler that copies the cluster backend's
// cumulative network-fault counters into the collector — a no-op when
// the backend does not report them (the in-process simulation).
func netProbe(cl cluster.Interface, collector *metrics.Collector) func(tick int) {
	nr, ok := cl.(cluster.NetReporter)
	if !ok {
		return func(int) {}
	}
	return func(tick int) {
		st := nr.NetStats()
		collector.MarkNet(tick, metrics.Net{
			RPCRetries: st.RPCRetries,
			Reconnects: st.Reconnects,
			Suspected:  st.Suspected,
			Condemned:  st.Condemned,
		})
	}
}

// netSummary renders the backend's network-fault counters for run
// summaries ("" when the backend reports none or nothing happened).
func netSummary(cl cluster.Interface) string {
	nr, ok := cl.(cluster.NetReporter)
	if !ok {
		return ""
	}
	st := nr.NetStats()
	if st == (cluster.NetStats{}) {
		return ""
	}
	return fmt.Sprintf("  [network: %d rpc retries, %d reconnects, %d suspected, %d condemned, %d fenced]",
		st.RPCRetries, st.Reconnects, st.Suspected, st.Condemned, st.Fenced)
}

// recoverySuffix renders the supervisor's effort for status lines
// ("" for unsupervised or effortless recoveries).
func recoverySuffix(s iterate.Sample) string {
	if s.Retries == 0 && s.Escalations == 0 && !s.Degraded {
		return ""
	}
	var parts []string
	if s.Escalations > 0 {
		parts = append(parts, fmt.Sprintf("%d escalation(s)", s.Escalations))
	}
	if s.Retries > 0 {
		parts = append(parts, fmt.Sprintf("%d retry(s)", s.Retries))
	}
	if s.Degraded {
		parts = append(parts, "degraded")
	}
	return "  [RECOVERY: " + strings.Join(parts, ", ") + "]"
}

// Frame is one iteration's rendered view.
type Frame struct {
	Tick      int
	Superstep int
	// Graph is the rendered graph pane ("" for the large graph).
	Graph string
	// Status is the one-line statistics readout.
	Status string
	// Failure describes a failure that struck in this iteration ("").
	Failure string
	// Aborted reports that the failure struck mid-superstep: the
	// attempt was torn down before committing and its statistics were
	// discarded.
	Aborted bool
}

// RunOutcome is a completed demo run: the frame history the
// play/step/back buttons navigate, and the collected statistics series.
type RunOutcome struct {
	Config  Config
	Frames  []Frame
	Stats   *metrics.Collector
	Summary string
}

// Run executes the configured demo scenario and materialises the frame
// history.
func Run(cfg Config) (*RunOutcome, error) {
	cfg = cfg.withDefaults()
	if cfg.Mode == ModePageRank {
		return runPR(cfg)
	}
	return runCC(cfg)
}

func demoGraph(cfg Config) (*graph.Graph, gen.Layout) {
	if cfg.Mode == ModePageRank {
		if cfg.Large {
			return gen.Twitter(cfg.LargeSize, cfg.Seed), nil
		}
		return gen.DemoDirected()
	}
	if cfg.Large {
		// Interpret the follower network as undirected for components,
		// as the demo does with its snapshot.
		und := graph.NewBuilder(false)
		gen.Twitter(cfg.LargeSize, cfg.Seed).Edges(func(e graph.Edge) { und.AddEdge(e.Src, e.Dst) })
		return und.Build(), nil
	}
	return gen.Demo()
}

func lostVertices(g *graph.Graph, par int, lostParts []int) map[graph.VertexID]bool {
	if len(lostParts) == 0 {
		return nil
	}
	set := make(map[int]bool, len(lostParts))
	for _, p := range lostParts {
		set[p] = true
	}
	out := make(map[graph.VertexID]bool)
	for _, v := range g.Vertices() {
		if set[graph.Partition(v, par)] {
			out[v] = true
		}
	}
	return out
}

func runCC(cfg Config) (*RunOutcome, error) {
	g, layout := demoGraph(cfg)
	truth := ref.ConnectedComponents(g)
	var renderer *viz.Renderer
	if !cfg.Large {
		renderer = viz.NewRenderer(g, layout)
		renderer.Color = cfg.Color
	}
	collector := metrics.NewCollector()
	outcome := &RunOutcome{Config: cfg, Stats: collector}

	if renderer != nil {
		outcome.Frames = append(outcome.Frames, Frame{
			Tick: -1, Superstep: -1,
			Graph:  renderer.CCFrame("initial state: every vertex is its own component", initialLabels(g), nil),
			Status: fmt.Sprintf("vertices=%d edges=%d  every vertex starts in its own component", g.NumVertices(), g.NumEdges()),
		})
	}

	pol, store := cfg.policy()
	sup := cfg.supervision(store)
	cl, stop, err := cfg.provisionCluster(sup)
	if err != nil {
		return nil, err
	}
	defer stop()
	sampleNet := netProbe(cl, collector)
	res, err := cc.Run(g, cc.Options{
		Parallelism: cfg.Parallelism,
		Injector:    cfg.injector(),
		Policy:      pol,
		Supervise:   sup,
		Cluster:     cl,
		Probe: func(job *cc.CC, s iterate.Sample) {
			converged := job.ConvergedCount(truth)
			collector.Record(s.Tick, "converged-vertices", float64(converged))
			collector.Record(s.Tick, "messages", float64(s.Stats.Messages))
			sampleNet(s.Tick)
			if o := pol.Overhead(); o.Checkpoints > 0 {
				collector.MarkCheckpoint(s.Tick, o.BarrierTime, o.CommitTime)
			}
			frame := Frame{Tick: s.Tick, Superstep: s.Superstep, Aborted: s.Aborted}
			title := fmt.Sprintf("iteration %d: %d/%d vertices converged, %d messages",
				s.Tick+1, converged, g.NumVertices(), s.Stats.Messages)
			if s.Failed() {
				frame.Failure = fmt.Sprintf("worker(s) %v failed, partitions %v lost — %s",
					s.FailedWorkers, s.LostPartitions, s.Recovery)
				if s.Aborted {
					frame.Failure = "mid-iteration abort: " + frame.Failure
					collector.MarkAborted(s.Tick)
					title += "  [FAILURE: aborted mid-iteration]"
				} else {
					title += "  [FAILURE: compensated]"
				}
				title += recoverySuffix(s)
				collector.MarkFailure(s.Tick, frame.Failure)
				collector.MarkRecovery(s.Tick, s.RecoveryDuration, s.Retries, s.Escalations)
			}
			if renderer != nil {
				frame.Graph = renderer.CCFrame(title, job.Components(), lostVertices(g, cfg.Parallelism, s.LostPartitions))
			}
			frame.Status = title
			outcome.Frames = append(outcome.Frames, frame)
		},
	})
	if err != nil {
		return nil, err
	}
	outcome.Summary = fmt.Sprintf(
		"connected components converged after %d iterations (%d attempts, %d failures%s): %d components — result %s%s",
		res.Supersteps, res.Ticks, res.Failures, supervisionSummary(res.Result),
		ref.NumComponents(res.Components), verdict(componentsEqual(res.Components, truth)),
		netSummary(cl))
	return outcome, nil
}

// supervisionSummary renders the supervisor's totals for run summaries
// ("" when it never had to work).
func supervisionSummary(res *iterate.Result) string {
	if res.TotalRetries == 0 && res.TotalEscalations == 0 {
		return ""
	}
	return fmt.Sprintf(", %d retries, %d escalations", res.TotalRetries, res.TotalEscalations)
}

func initialLabels(g *graph.Graph) map[graph.VertexID]graph.VertexID {
	m := make(map[graph.VertexID]graph.VertexID, g.NumVertices())
	for _, v := range g.Vertices() {
		m[v] = v
	}
	return m
}

func componentsEqual(a, b map[graph.VertexID]graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func verdict(ok bool) string {
	if ok {
		return "CORRECT (matches union-find ground truth)"
	}
	return "INCORRECT"
}

func runPR(cfg Config) (*RunOutcome, error) {
	g, layout := demoGraph(cfg)
	truth, _ := ref.PageRank(g, ref.PageRankOptions{})
	eps := convergedEps(g)
	var renderer *viz.Renderer
	if !cfg.Large {
		renderer = viz.NewRenderer(g, layout)
		renderer.Color = cfg.Color
	}
	collector := metrics.NewCollector()
	outcome := &RunOutcome{Config: cfg, Stats: collector}

	if renderer != nil {
		uniform := make(map[graph.VertexID]float64, g.NumVertices())
		for _, v := range g.Vertices() {
			uniform[v] = 1 / float64(g.NumVertices())
		}
		outcome.Frames = append(outcome.Frames, Frame{
			Tick: -1, Superstep: -1,
			Graph:  renderer.PRFrame("initial state: uniform rank distribution", uniform, nil),
			Status: fmt.Sprintf("vertices=%d edges=%d  all vertices start at rank 1/n", g.NumVertices(), g.NumEdges()),
		})
	}

	pol, store := cfg.policy()
	sup := cfg.supervision(store)
	cl, stop, err := cfg.provisionCluster(sup)
	if err != nil {
		return nil, err
	}
	defer stop()
	sampleNet := netProbe(cl, collector)
	res, err := pagerank.Run(g, pagerank.Options{
		Parallelism:   cfg.Parallelism,
		MaxIterations: cfg.PRIterations,
		Injector:      cfg.injector(),
		Policy:        pol,
		Supervise:     sup,
		Cluster:       cl,
		Probe: func(job *pagerank.PR, s iterate.Sample) {
			converged := job.ConvergedCount(truth, eps)
			l1 := s.Stats.Extra["l1"]
			collector.Record(s.Tick, "converged-vertices", float64(converged))
			collector.Record(s.Tick, "l1-delta", l1)
			sampleNet(s.Tick)
			if o := pol.Overhead(); o.Checkpoints > 0 {
				collector.MarkCheckpoint(s.Tick, o.BarrierTime, o.CommitTime)
			}
			frame := Frame{Tick: s.Tick, Superstep: s.Superstep, Aborted: s.Aborted}
			title := fmt.Sprintf("iteration %d: %d/%d vertices at their true rank, L1 delta %.2e",
				s.Tick+1, converged, g.NumVertices(), l1)
			if s.Failed() {
				frame.Failure = fmt.Sprintf("worker(s) %v failed, partitions %v lost — %s",
					s.FailedWorkers, s.LostPartitions, s.Recovery)
				if s.Aborted {
					frame.Failure = "mid-iteration abort: " + frame.Failure
					collector.MarkAborted(s.Tick)
					title += "  [FAILURE: aborted mid-iteration]"
				} else {
					title += "  [FAILURE: mass redistributed]"
				}
				title += recoverySuffix(s)
				collector.MarkFailure(s.Tick, frame.Failure)
				collector.MarkRecovery(s.Tick, s.RecoveryDuration, s.Retries, s.Escalations)
			}
			if renderer != nil {
				frame.Graph = renderer.PRFrame(title, job.RankVector(), lostVertices(g, cfg.Parallelism, s.LostPartitions))
			} else if s.Tick%5 == 4 {
				frame.Graph = "top ranked vertices:\n" + viz.TopRanks(job.RankVector(), 5)
			}
			frame.Status = title
			outcome.Frames = append(outcome.Frames, frame)
		},
	})
	if err != nil {
		return nil, err
	}
	outcome.Summary = fmt.Sprintf(
		"pagerank finished after %d iterations (%d attempts, %d failures%s): L1 distance to ground truth %.2e — result %s%s",
		res.Supersteps, res.Ticks, res.Failures, supervisionSummary(res.Result),
		ref.L1(res.Ranks, truth), verdict(ref.L1(res.Ranks, truth) < 1e-3),
		netSummary(cl))
	return outcome, nil
}

// convergedEps picks the "vertex has converged to its true rank"
// tolerance: 10% of the uniform rank, tight enough that compensation
// visibly un-converges vertices yet loose enough that the plot shows a
// progression on the small demo graph.
func convergedEps(g *graph.Graph) float64 {
	return 0.1 / float64(g.NumVertices())
}

// Charts builds the two statistics panes of the current tab (the GUI's
// bottom-left and bottom-right plots), with failure iterations marked.
func (o *RunOutcome) Charts() []*plot.Chart {
	fails := o.Stats.FailureTicks()
	left := &plot.Chart{
		Title:   "vertices converged to their final value, per iteration",
		YLabel:  "vertices",
		Series:  []plot.Line{{Name: "converged", Values: o.Stats.Series("converged-vertices")}},
		Markers: fails,
		Width:   64, Height: 10,
	}
	var right *plot.Chart
	if o.Config.Mode == ModePageRank {
		l1 := append([]float64(nil), o.Stats.Series("l1-delta")...)
		for i, v := range l1 {
			if v > 0 {
				l1[i] = math.Log10(v)
			}
		}
		right = &plot.Chart{
			Title:   "log10 L1 norm of rank delta, per iteration (spikes = failures)",
			YLabel:  "log10(L1)",
			Series:  []plot.Line{{Name: "log10(L1)", Values: l1}},
			Markers: fails,
			Width:   64, Height: 10,
		}
	} else {
		right = &plot.Chart{
			Title:   "messages (candidate labels sent to neighbors), per iteration",
			YLabel:  "messages",
			Series:  []plot.Line{{Name: "messages", Values: o.Stats.Series("messages")}},
			Markers: fails,
			Width:   64, Height: 10,
		}
	}
	return []*plot.Chart{left, right}
}

// Plots renders the two statistics panes as terminal charts.
func (o *RunOutcome) Plots() string {
	charts := o.Charts()
	var b strings.Builder
	b.WriteString(charts[0].Render())
	b.WriteString("\n")
	b.WriteString(charts[1].Render())
	return b.String()
}
