package demoapp

import (
	"flag"
	"os"
	"testing"

	"optiflow/internal/cluster/proc"
	"optiflow/internal/supervise"
)

var clusterMode = flag.String("cluster", "inproc",
	"cluster backend for cluster-facing tests: inproc (simulation) or proc (real worker processes)")

// TestMain lets the coordinator re-execute this test binary as a
// worker daemon when -cluster=proc.
func TestMain(m *testing.M) {
	proc.MaybeChildMode()
	os.Exit(m.Run())
}

// testClusterFactory maps the -cluster flag onto a Config.NewCluster
// factory: nil for the in-process simulation (the default), or
// proc.Provision for real multi-process worker daemons, so the same
// fault matrix runs against both deployments.
func testClusterFactory(t *testing.T) supervise.ClusterFactory {
	t.Helper()
	switch *clusterMode {
	case "", "inproc":
		return nil
	case "proc":
		return proc.Provision
	default:
		t.Fatalf("unknown -cluster mode %q (want inproc or proc)", *clusterMode)
		return nil
	}
}
