package demoapp

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"optiflow/internal/algo/cc"
	"optiflow/internal/algo/pagerank"
	"optiflow/internal/supervise"
)

// Shell is the interactive command loop of the demonstration — the
// terminal stand-in for the GUI's tabs and buttons.
type Shell struct {
	in  *bufio.Scanner
	out io.Writer

	cfg     Config
	outcome *RunOutcome
	cursor  int // current frame index for step/back
	// PlayDelay slows down small-graph playback "so that demo visitors
	// can easily trace each iteration" (§3.1). Zero in tests.
	PlayDelay time.Duration
	// ClusterFactory, when set, provisions the cluster backend for
	// every run (e.g. proc.Provision for real worker processes).
	ClusterFactory supervise.ClusterFactory
}

// NewShell builds a shell reading commands from in and writing to out.
func NewShell(in io.Reader, out io.Writer, color bool) *Shell {
	return &Shell{
		in:  bufio.NewScanner(in),
		out: out,
		cfg: Config{Color: color, Failures: map[int][]int{}, MidStepFailures: map[int][]int{}, DuringRecoveryFailures: map[int][]int{}},
	}
}

func (s *Shell) printf(format string, args ...any) {
	fmt.Fprintf(s.out, format, args...)
}

const helpText = `commands (the GUI's tabs and buttons):
  cc | pagerank          choose the algorithm tab
  small | large [n]      choose the input graph (hand-crafted, or Twitter-like with n vertices)
  fail <iter> <worker>   schedule worker <worker> to fail in iteration <iter> (1-based)
  midfail <iter> <worker>  schedule worker <worker> to fail mid-iteration <iter> (aborts the attempt)
  recfail <iter> <worker>  schedule worker <worker> to fail while recovery for iteration <iter> runs (needs spares)
  policy <name>          choose recovery: optimistic | checkpoint | async-checkpoint | restart | none
  spares <n> | off       supervise the run with n spare workers (0 = degraded mode on failure); off = unsupervised
  failures               list scheduled failures
  run                    execute the algorithm ("play" from the start)
  play                   replay all frames
  step                   advance one iteration frame
  back                   jump to the previous iteration ("backward" button)
  plots                  show the two statistics plots
  html <file>            write the run as a self-contained HTML report
  explain                print the algorithm's dataflow (Fig. 1 of the paper)
  status                 show current configuration
  help                   this text
  quit                   exit
`

// Loop runs the command loop until EOF or quit.
func (s *Shell) Loop() {
	s.printf("optiflow demo — optimistic recovery for iterative dataflows in action\n")
	s.printf("type 'help' for the list of commands; typical session: cc, fail 3 1, run, plots\n")
	for {
		s.printf("demo> ")
		if !s.in.Scan() {
			s.printf("\n")
			return
		}
		line := strings.TrimSpace(s.in.Text())
		if line == "" {
			continue
		}
		if !s.Execute(line) {
			return
		}
	}
}

// Execute runs one command line; it returns false on quit.
func (s *Shell) Execute(line string) bool {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "quit", "exit":
		return false
	case "help":
		s.printf("%s", helpText)
	case "cc":
		s.cfg.Mode = ModeCC
		s.reset("tab: connected components (delta iteration)")
	case "pagerank", "pr":
		s.cfg.Mode = ModePageRank
		s.reset("tab: pagerank (bulk iteration)")
	case "small":
		s.cfg.Large = false
		s.reset("input: small hand-crafted graph (visualised)")
	case "large":
		s.cfg.Large = true
		if len(args) > 0 {
			if n, err := strconv.Atoi(args[0]); err == nil && n > 0 {
				s.cfg.LargeSize = n
			}
		}
		s.reset(fmt.Sprintf("input: synthetic Twitter-like graph, %d vertices (stats only)", s.cfg.withDefaults().LargeSize))
	case "fail":
		if len(args) != 2 {
			s.printf("usage: fail <iteration> <worker>\n")
			break
		}
		iter, err1 := strconv.Atoi(args[0])
		worker, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil || iter < 1 || worker < 0 {
			s.printf("usage: fail <iteration>=1.. <worker>=0..%d\n", s.cfg.withDefaults().Parallelism-1)
			break
		}
		// The GUI numbers iterations from 1; supersteps are 0-based.
		s.cfg.Failures[iter-1] = append(s.cfg.Failures[iter-1], worker)
		s.outcome = nil
		s.printf("scheduled: worker %d fails in iteration %d\n", worker, iter)
	case "midfail":
		if len(args) != 2 {
			s.printf("usage: midfail <iteration> <worker>\n")
			break
		}
		iter, err1 := strconv.Atoi(args[0])
		worker, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil || iter < 1 || worker < 0 {
			s.printf("usage: midfail <iteration>=1.. <worker>=0..%d\n", s.cfg.withDefaults().Parallelism-1)
			break
		}
		s.cfg.MidStepFailures[iter-1] = append(s.cfg.MidStepFailures[iter-1], worker)
		s.outcome = nil
		s.printf("scheduled: worker %d fails in the middle of iteration %d\n", worker, iter)
	case "recfail":
		if len(args) != 2 {
			s.printf("usage: recfail <iteration> <worker>\n")
			break
		}
		iter, err1 := strconv.Atoi(args[0])
		worker, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil || iter < 1 || worker < 0 {
			s.printf("usage: recfail <iteration>=1.. <worker>=0..%d\n", s.cfg.withDefaults().Parallelism-1)
			break
		}
		s.cfg.DuringRecoveryFailures[iter-1] = append(s.cfg.DuringRecoveryFailures[iter-1], worker)
		if !s.cfg.Supervised {
			s.cfg.Supervised = true
			s.cfg.Spares = -1
			s.printf("(supervision enabled with unlimited spares; tune with 'spares <n>')\n")
		}
		s.outcome = nil
		s.printf("scheduled: worker %d fails during the recovery of iteration %d\n", worker, iter)
	case "spares":
		if len(args) != 1 {
			s.printf("usage: spares <n>|off\n")
			break
		}
		if args[0] == "off" {
			s.cfg.Supervised = false
			s.reset("supervision: off (failures heal instantly, policy errors abort)")
			break
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			s.printf("usage: spares <n>|off\n")
			break
		}
		s.cfg.Supervised = true
		s.cfg.Spares = n
		if n < 0 {
			s.reset("supervision: on, unlimited spare workers")
		} else {
			s.reset(fmt.Sprintf("supervision: on, %d spare worker(s) — exhausted spares degrade the cluster", n))
		}
	case "policy":
		if len(args) != 1 {
			s.printf("usage: policy optimistic|checkpoint|async-checkpoint|restart|none\n")
			break
		}
		switch args[0] {
		case "optimistic", "checkpoint", "async-checkpoint", "restart", "none":
			s.cfg.Policy = args[0]
			s.reset(fmt.Sprintf("recovery policy: %s", args[0]))
		default:
			s.printf("unknown policy %q; choose optimistic|checkpoint|async-checkpoint|restart|none\n", args[0])
		}
	case "failures":
		if len(s.cfg.Failures) == 0 && len(s.cfg.MidStepFailures) == 0 && len(s.cfg.DuringRecoveryFailures) == 0 {
			s.printf("no failures scheduled\n")
			break
		}
		for iter, ws := range s.cfg.Failures {
			s.printf("iteration %d: workers %v\n", iter+1, ws)
		}
		for iter, ws := range s.cfg.MidStepFailures {
			s.printf("iteration %d (mid-step): workers %v\n", iter+1, ws)
		}
		for iter, ws := range s.cfg.DuringRecoveryFailures {
			s.printf("iteration %d (during recovery): workers %v\n", iter+1, ws)
		}
	case "run", "play":
		if s.outcome == nil || cmd == "run" {
			if err := s.run(); err != nil {
				s.printf("error: %v\n", err)
				break
			}
		}
		s.playAll()
	case "step":
		if !s.ensureRun() {
			break
		}
		if s.cursor+1 >= len(s.outcome.Frames) {
			s.printf("(already at the last iteration)\n")
			break
		}
		s.cursor++
		s.showFrame(s.cursor)
	case "back":
		if !s.ensureRun() {
			break
		}
		if s.cursor <= 0 {
			s.printf("(already at the initial state)\n")
			break
		}
		s.cursor--
		s.showFrame(s.cursor)
	case "plots":
		if !s.ensureRun() {
			break
		}
		s.printf("%s", s.outcome.Plots())
	case "html":
		if len(args) != 1 {
			s.printf("usage: html <file.html>\n")
			break
		}
		if !s.ensureRun() {
			break
		}
		if err := os.WriteFile(args[0], []byte(s.outcome.HTMLReport()), 0o644); err != nil {
			s.printf("error: %v\n", err)
			break
		}
		s.printf("wrote HTML report to %s\n", args[0])
	case "explain":
		if s.cfg.Mode == ModePageRank {
			s.printf("%s", pagerank.FigurePlan().Explain())
		} else {
			s.printf("%s", cc.FigurePlan().Explain())
		}
	case "status":
		c := s.cfg.withDefaults()
		input := "small hand-crafted graph"
		if c.Large {
			input = fmt.Sprintf("Twitter-like graph (%d vertices)", c.LargeSize)
		}
		supervision := "off"
		if c.Supervised {
			supervision = fmt.Sprintf("on (spares=%d)", c.Spares)
			if c.Spares < 0 {
				supervision = "on (unlimited spares)"
			}
		}
		s.printf("tab=%s input=%s parallelism=%d policy=%s supervision=%s scheduled failures=%d mid-step=%d during-recovery=%d\n",
			c.Mode, input, c.Parallelism, c.Policy, supervision,
			len(s.cfg.Failures), len(s.cfg.MidStepFailures), len(s.cfg.DuringRecoveryFailures))
	default:
		s.printf("unknown command %q; type 'help'\n", cmd)
	}
	return true
}

func (s *Shell) reset(msg string) {
	s.outcome = nil
	s.cursor = 0
	s.printf("%s\n", msg)
}

func (s *Shell) run() error {
	s.cfg.NewCluster = s.ClusterFactory
	out, err := Run(s.cfg)
	if err != nil {
		return err
	}
	s.outcome = out
	s.cursor = 0
	return nil
}

func (s *Shell) ensureRun() bool {
	if s.outcome == nil {
		if err := s.run(); err != nil {
			s.printf("error: %v\n", err)
			return false
		}
	}
	return true
}

func (s *Shell) showFrame(i int) {
	f := s.outcome.Frames[i]
	if f.Failure != "" {
		mark := "⚡"
		if f.Aborted {
			mark = "⛔"
		}
		s.printf("  %s %s\n", mark, f.Failure)
	}
	if f.Graph != "" {
		s.printf("%s\n", f.Graph)
	} else {
		s.printf("%s\n", f.Status)
	}
}

func (s *Shell) playAll() {
	for i := range s.outcome.Frames {
		s.showFrame(i)
		s.cursor = i
		if s.PlayDelay > 0 {
			time.Sleep(s.PlayDelay)
		}
	}
	s.printf("%s\n", s.outcome.Summary)
}
