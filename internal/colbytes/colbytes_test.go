package colbytes

import (
	"errors"
	"math"
	"testing"
)

func TestScalarRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU8(b, 0xAB)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendU32(b, 0xDEADBEEF)
	b = AppendU64(b, 1<<63|42)
	b = AppendF64(b, math.Copysign(0, -1))
	b = AppendF64(b, math.Inf(-1))
	b = AppendString(b, "héllo")
	b = AppendString(b, "")

	r := NewReader(b)
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<63|42 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.F64(); math.Signbit(got) == false || got != 0 {
		t.Errorf("F64 -0.0 = %v (signbit %v)", got, math.Signbit(got))
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 -Inf = %v", got)
	}
	if got := r.String(); got != "héllo" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if r.Err() != nil {
		t.Fatalf("Err = %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
}

func TestColumnRoundTrip(t *testing.T) {
	u64s := []uint64{0, 1, math.MaxUint64, 7}
	u32s := []uint32{9, 0, math.MaxUint32}
	i32s := []int32{-1, 0, math.MinInt32, math.MaxInt32}
	f64s := []float64{0, math.Copysign(0, -1), 1.5, math.Inf(1), math.SmallestNonzeroFloat64}

	var b []byte
	b = AppendU64s(b, u64s)
	b = AppendU32s(b, u32s)
	b = AppendI32s(b, i32s)
	b = AppendF64s(b, f64s)
	b = AppendU64s(b, nil) // empty column

	r := NewReader(b)
	checkU64 := r.U64s(nil)
	checkU32 := r.U32s(nil)
	checkI32 := r.I32s(nil)
	checkF64 := r.F64s(nil)
	empty := r.U64s(nil)
	if r.Err() != nil {
		t.Fatalf("Err = %v", r.Err())
	}
	for i, v := range u64s {
		if checkU64[i] != v {
			t.Errorf("u64[%d] = %d, want %d", i, checkU64[i], v)
		}
	}
	for i, v := range u32s {
		if checkU32[i] != v {
			t.Errorf("u32[%d] = %d, want %d", i, checkU32[i], v)
		}
	}
	for i, v := range i32s {
		if checkI32[i] != v {
			t.Errorf("i32[%d] = %d, want %d", i, checkI32[i], v)
		}
	}
	for i, v := range f64s {
		if math.Float64bits(checkF64[i]) != math.Float64bits(v) {
			t.Errorf("f64[%d] = %v, want %v", i, checkF64[i], v)
		}
	}
	if len(empty) != 0 {
		t.Errorf("empty column decoded to %v", empty)
	}
}

func TestColumnReusesDst(t *testing.T) {
	b := AppendU64s(nil, []uint64{1, 2, 3})
	scratch := make([]uint64, 0, 8)
	got := NewReader(b).U64s(scratch)
	if &got[0] != &scratch[:1][0] {
		t.Error("column decode did not reuse dst capacity")
	}
}

func TestTruncatedInputs(t *testing.T) {
	full := AppendU64s(AppendString(nil, "abc"), []uint64{1, 2, 3})
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.String()
		_ = r.U64s(nil)
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, r.Err())
		}
	}
}

// TestCorruptCountDoesNotAllocate pins the safety property: a column
// count far larger than the remaining payload fails instead of
// allocating count elements.
func TestCorruptCountDoesNotAllocate(t *testing.T) {
	b := AppendU32(nil, math.MaxUint32) // claims 4B elements, has none
	allocs := testing.AllocsPerRun(10, func() {
		r := NewReader(b)
		if r.U64s(nil) != nil || !errors.Is(r.Err(), ErrTruncated) {
			t.Fatal("corrupt count was not rejected")
		}
	})
	// O(1) bookkeeping allocations (Reader, error wrapping) are fine;
	// anything proportional to the claimed 4B-element count is not.
	if allocs > 8 {
		t.Errorf("corrupt count allocated %.0f times per run", allocs)
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.U64() // fails
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	if got := r.U8(); got != 0 {
		t.Errorf("read after error = %d, want 0", got)
	}
}
