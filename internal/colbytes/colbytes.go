// Package colbytes is the low-level byte codec shared by the columnar
// wire format, the exec column batch export views and the dense state
// store byte views: fixed-width little-endian scalars and
// length-prefixed column segments, written with append-style helpers
// and read back with a sticky-error Reader.
//
// A column segment is a uint32 element count followed by the elements
// as fixed-width little-endian values. The Reader validates every
// count against the bytes actually remaining BEFORE allocating, so a
// corrupt or adversarial count cannot drive an unbounded allocation —
// the decode fails with ErrTruncated instead.
package colbytes

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports a read past the end of the buffer — a corrupt
// length, a truncated frame, or a count larger than the remaining
// payload.
var ErrTruncated = errors.New("colbytes: truncated input")

// AppendU8 appends one byte.
func AppendU8(dst []byte, v byte) []byte { return append(dst, v) }

// AppendBool appends a bool as one byte (0 or 1).
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendU32 appends a little-endian uint32.
func AppendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// AppendU64 appends a little-endian uint64.
func AppendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendF64 appends a float64 as its IEEE-754 bit pattern,
// little-endian. Exact: NaN payloads, signed zeros and subnormals all
// survive the round trip.
func AppendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendString appends a uint32 byte length followed by the bytes.
func AppendString(dst []byte, s string) []byte {
	dst = AppendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendU64s appends a uint64 column segment: uint32 count, then the
// values.
func AppendU64s(dst []byte, col []uint64) []byte {
	dst = AppendU32(dst, uint32(len(col)))
	for _, v := range col {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// AppendU32s appends a uint32 column segment.
func AppendU32s(dst []byte, col []uint32) []byte {
	dst = AppendU32(dst, uint32(len(col)))
	for _, v := range col {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

// AppendI32s appends an int32 column segment (two's-complement bits).
func AppendI32s(dst []byte, col []int32) []byte {
	dst = AppendU32(dst, uint32(len(col)))
	for _, v := range col {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// AppendF64s appends a float64 column segment (IEEE-754 bits).
func AppendF64s(dst []byte, col []float64) []byte {
	dst = AppendU32(dst, uint32(len(col)))
	for _, v := range col {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// Reader consumes a byte buffer front to back with a sticky error:
// after the first failed read every further read returns zero values,
// so a decode sequence can run unchecked and test Err once at the end.
type Reader struct {
	b   []byte
	err error
}

// NewReader returns a Reader over b. The Reader aliases b — the caller
// must not recycle b until decoding (including any column reads, which
// copy) is complete.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the sticky error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports the unread byte count.
func (r *Reader) Remaining() int { return len(r.b) }

// fail records the first error.
func (r *Reader) fail(context string) {
	if r.err == nil {
		r.err = fmt.Errorf("%s: %w", context, ErrTruncated)
	}
}

// Fail lets a caller validating higher-level invariants (a count
// header describing more elements than remain, say) poison the reader
// with a truncation error of its own.
func (r *Reader) Fail(context string) { r.fail(context) }

// take consumes n bytes, or fails.
func (r *Reader) take(n int, context string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b) {
		r.fail(context)
		return nil
	}
	b := r.b[:n]
	r.b = r.b[n:]
	return b
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	b := r.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F64 reads a float64 from its IEEE-754 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String reads a uint32-length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U32())
	b := r.take(n, "string")
	if b == nil {
		return ""
	}
	return string(b)
}

// colLen reads and validates a column count against the remaining
// bytes at the given element width, so the caller can allocate safely.
func (r *Reader) colLen(width int, context string) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n*width > len(r.b) {
		r.fail(context)
		return 0
	}
	return n
}

// Raw consumes n bytes and returns them without copying. The returned
// slice aliases the Reader's buffer, so the caller must finish with it
// (or copy) before the buffer is recycled — decoders use it to run one
// tight fixed-width loop over a whole column instead of paying the
// Reader's per-element bookkeeping. Returns nil (and poisons the
// Reader) if fewer than n bytes remain.
func (r *Reader) Raw(n int, context string) []byte {
	return r.take(n, context)
}

// U64s reads a uint64 column segment, appending to dst (pass nil for
// a fresh slice, or a truncated slice to reuse capacity).
func (r *Reader) U64s(dst []uint64) []uint64 {
	n := r.colLen(8, "u64 column")
	for i := 0; i < n; i++ {
		dst = append(dst, binary.LittleEndian.Uint64(r.b[8*i:]))
	}
	if r.err == nil {
		r.b = r.b[8*n:]
	}
	return dst
}

// U32s reads a uint32 column segment, appending to dst.
func (r *Reader) U32s(dst []uint32) []uint32 {
	n := r.colLen(4, "u32 column")
	for i := 0; i < n; i++ {
		dst = append(dst, binary.LittleEndian.Uint32(r.b[4*i:]))
	}
	if r.err == nil {
		r.b = r.b[4*n:]
	}
	return dst
}

// I32s reads an int32 column segment, appending to dst.
func (r *Reader) I32s(dst []int32) []int32 {
	n := r.colLen(4, "i32 column")
	for i := 0; i < n; i++ {
		dst = append(dst, int32(binary.LittleEndian.Uint32(r.b[4*i:])))
	}
	if r.err == nil {
		r.b = r.b[4*n:]
	}
	return dst
}

// F64s reads a float64 column segment, appending to dst.
func (r *Reader) F64s(dst []float64) []float64 {
	n := r.colLen(8, "f64 column")
	for i := 0; i < n; i++ {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(r.b[8*i:])))
	}
	if r.err == nil {
		r.b = r.b[8*n:]
	}
	return dst
}
