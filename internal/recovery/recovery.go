// Package recovery implements the fault-tolerance strategies the paper
// contrasts (§2.2):
//
//   - Optimistic — the paper's contribution: no checkpoints; after a
//     failure a user-supplied compensation function transitions the
//     algorithm to a consistent state from which the fixpoint iteration
//     converges to the correct result. Failure-free execution pays zero
//     overhead.
//   - Checkpoint — classic pessimistic rollback recovery: snapshot the
//     iteration state to stable storage every k supersteps; on failure
//     restore the latest snapshot and redo the lost supersteps.
//   - Restart — the degenerate lineage fallback for iterative dataflows
//     whose supersteps depend on all partitions of the previous one:
//     recomputing lost partitions means restarting the iteration.
//   - None — no fault tolerance; a failure aborts the job.
package recovery

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"optiflow/internal/checkpoint"
	"optiflow/internal/clock"
)

// Job is the recovery-relevant surface of an iterative computation: the
// operations a policy needs to snapshot, restore, reset or compensate
// the partitioned iteration state.
type Job interface {
	// Name identifies the job in checkpoint storage.
	Name() string
	// SnapshotTo serialises the full iteration state (solution set,
	// workset, rank vector, ...) for checkpointing.
	SnapshotTo(w *bytes.Buffer) error
	// RestoreFrom replaces the iteration state from a snapshot.
	RestoreFrom(data []byte) error
	// ClearPartitions destroys the listed state partitions — the direct
	// effect of their owning worker crashing.
	ClearPartitions(parts []int)
	// Compensate invokes the algorithm's compensation function after
	// the listed partitions were lost and re-assigned. Implementations
	// may touch every partition: restoring a consistent global state
	// (e.g. ranks summing to one) can require it.
	Compensate(lost []int) error
	// ResetToInitial rewinds the iteration state to superstep zero.
	ResetToInitial() error
}

// Failure describes one failure event as seen by a policy.
type Failure struct {
	// Superstep is the logical iteration during which the failure
	// struck; Tick the monotone attempt counter.
	Superstep, Tick int
	// Workers lists the failed workers, LostPartitions the state
	// partitions they owned.
	Workers, LostPartitions []int
}

// Overhead quantifies what fault-tolerance preparation cost during
// failure-free execution (experiment E6).
type Overhead struct {
	Checkpoints  int
	BytesWritten int64
	// CheckpointTime is the time the iteration was stalled at superstep
	// barriers for checkpointing.
	CheckpointTime time.Duration
	// BarrierTime equals CheckpointTime for synchronous policies; for
	// the async pipeline it is the (much smaller) capture+submit cost
	// the barrier still pays.
	BarrierTime time.Duration
	// CommitTime is the end-to-end capture-to-durable checkpoint cost.
	// For synchronous policies it equals CheckpointTime; for the async
	// pipeline it mostly overlaps the following supersteps.
	CommitTime time.Duration
}

// Policy reacts to the lifecycle of an iterative job.
type Policy interface {
	// PolicyName returns a short identifier ("optimistic", ...).
	PolicyName() string
	// Setup runs before the first superstep (e.g. an initial snapshot).
	Setup(job Job) error
	// AfterSuperstep runs after each committed superstep (e.g. periodic
	// snapshots).
	AfterSuperstep(job Job, superstep int) error
	// OnFailure recovers from f. The driver has already cleared the
	// lost partitions and re-assigned them. It returns the superstep at
	// which execution resumes (current+1 to keep going, an earlier
	// value to rewind).
	OnFailure(job Job, f Failure) (resumeAt int, err error)
	// Overhead reports accumulated fault-tolerance cost.
	Overhead() Overhead
}

// ErrUnrecoverable reports a failure under a policy with no recovery
// mechanism.
var ErrUnrecoverable = errors.New("recovery: failure without a recovery mechanism")

// None aborts on failure — it exists to measure the fault-tolerance-free
// baseline.
type None struct{}

// PolicyName implements Policy.
func (None) PolicyName() string { return "none" }

// Setup implements Policy.
func (None) Setup(Job) error { return nil }

// AfterSuperstep implements Policy.
func (None) AfterSuperstep(Job, int) error { return nil }

// OnFailure implements Policy.
func (None) OnFailure(_ Job, f Failure) (int, error) {
	return 0, fmt.Errorf("%w: workers %v died in superstep %d", ErrUnrecoverable, f.Workers, f.Superstep)
}

// Overhead implements Policy.
func (None) Overhead() Overhead { return Overhead{} }

// Restart rewinds the whole job to superstep zero — what lineage-based
// recovery degenerates to when every partition of iteration i depends
// on all partitions of iteration i-1 (§2.2).
type Restart struct{}

// PolicyName implements Policy.
func (Restart) PolicyName() string { return "restart" }

// Setup implements Policy.
func (Restart) Setup(Job) error { return nil }

// AfterSuperstep implements Policy.
func (Restart) AfterSuperstep(Job, int) error { return nil }

// OnFailure implements Policy.
func (Restart) OnFailure(job Job, _ Failure) (int, error) {
	if err := job.ResetToInitial(); err != nil {
		return 0, fmt.Errorf("recovery: restart: %v", err)
	}
	return 0, nil
}

// Overhead implements Policy.
func (Restart) Overhead() Overhead { return Overhead{} }

// Optimistic is the paper's mechanism: nothing is done during
// failure-free execution; on failure the compensation function restores
// a consistent state and execution simply continues.
type Optimistic struct{}

// PolicyName implements Policy.
func (Optimistic) PolicyName() string { return "optimistic" }

// Setup implements Policy.
func (Optimistic) Setup(Job) error { return nil }

// AfterSuperstep implements Policy — deliberately a no-op: optimal
// failure-free performance is the point.
func (Optimistic) AfterSuperstep(Job, int) error { return nil }

// OnFailure implements Policy: compensate and keep going.
func (Optimistic) OnFailure(job Job, f Failure) (int, error) {
	if err := job.Compensate(f.LostPartitions); err != nil {
		return 0, fmt.Errorf("recovery: compensation failed: %v", err)
	}
	return f.Superstep + 1, nil
}

// Overhead implements Policy.
func (Optimistic) Overhead() Overhead { return Overhead{} }

// Checkpoint is pessimistic rollback recovery: a snapshot of the full
// iteration state every Interval supersteps (plus one before the first
// superstep), restore-and-redo on failure.
type Checkpoint struct {
	// Interval is the superstep period between snapshots (>= 1).
	Interval int
	// Store is the stable storage target.
	Store checkpoint.Store

	ckptTime time.Duration
}

// NewCheckpoint returns a Checkpoint policy with the given interval and
// store.
func NewCheckpoint(interval int, store checkpoint.Store) *Checkpoint {
	if interval < 1 {
		interval = 1
	}
	return &Checkpoint{Interval: interval, Store: store}
}

// PolicyName implements Policy.
func (c *Checkpoint) PolicyName() string {
	return fmt.Sprintf("checkpoint(k=%d)", c.Interval)
}

// Setup implements Policy: snapshot the initial state so that failures
// before the first periodic checkpoint can roll back to superstep 0
// instead of aborting.
func (c *Checkpoint) Setup(job Job) error {
	return c.snapshot(job, -1)
}

// AfterSuperstep implements Policy.
func (c *Checkpoint) AfterSuperstep(job Job, superstep int) error {
	if (superstep+1)%c.Interval != 0 {
		return nil
	}
	return c.snapshot(job, superstep)
}

func (c *Checkpoint) snapshot(job Job, superstep int) error {
	start := clock.Now()
	var buf bytes.Buffer
	if err := job.SnapshotTo(&buf); err != nil {
		return fmt.Errorf("recovery: snapshotting %s after superstep %d: %w", job.Name(), superstep, err)
	}
	if err := c.Store.Save(job.Name(), superstep, buf.Bytes()); err != nil {
		return fmt.Errorf("recovery: saving checkpoint of %s: %v", job.Name(), err)
	}
	c.ckptTime += clock.Since(start)
	return nil
}

// OnFailure implements Policy: restore the latest snapshot and resume
// right after the superstep it captured.
func (c *Checkpoint) OnFailure(job Job, f Failure) (int, error) {
	data, superstep, ok, err := c.Store.Load(job.Name())
	if err != nil {
		return 0, fmt.Errorf("recovery: loading checkpoint of %s: %v", job.Name(), err)
	}
	if !ok {
		return 0, fmt.Errorf("recovery: no checkpoint for %s despite Setup", job.Name())
	}
	if err := job.RestoreFrom(data); err != nil {
		return 0, fmt.Errorf("recovery: restoring %s: %v", job.Name(), err)
	}
	return superstep + 1, nil
}

// Overhead implements Policy. Synchronous checkpointing stalls the
// barrier for the full snapshot cost, so all three times coincide.
func (c *Checkpoint) Overhead() Overhead {
	return Overhead{
		Checkpoints:    c.Store.Saves(),
		BytesWritten:   c.Store.BytesWritten(),
		CheckpointTime: c.ckptTime,
		BarrierTime:    c.ckptTime,
		CommitTime:     c.ckptTime,
	}
}

// ConfinedJob is implemented by jobs that can rebuild lost partitions
// locally from logged accumulators (see the vertexcentric package)
// instead of re-initializing them and re-propagating.
type ConfinedJob interface {
	Job
	// RecoverConfined rebuilds the listed lost partitions from the
	// surviving accumulator replicas, falling back to compensation for
	// partitions whose replica was lost too.
	RecoverConfined(lost []int) error
}

// Confined is confined recovery: lost vertices are rebuilt in place
// from accumulator replicas logged during failure-free execution —
// recovery completes in about one superstep, at the cost of one
// combine per gathered vertex per superstep while nothing fails.
// Sound for programs whose Compute is a monotone fold of combined
// messages (min/max style).
type Confined struct{}

// PolicyName implements Policy.
func (Confined) PolicyName() string { return "confined" }

// Setup implements Policy.
func (Confined) Setup(Job) error { return nil }

// AfterSuperstep implements Policy.
func (Confined) AfterSuperstep(Job, int) error { return nil }

// OnFailure implements Policy.
func (Confined) OnFailure(job Job, f Failure) (int, error) {
	cj, ok := job.(ConfinedJob)
	if !ok {
		return 0, fmt.Errorf("recovery: job %s does not support confined recovery", job.Name())
	}
	if err := cj.RecoverConfined(f.LostPartitions); err != nil {
		return 0, fmt.Errorf("recovery: confined recovery failed: %v", err)
	}
	return f.Superstep + 1, nil
}

// Overhead implements Policy — the accumulator log lives inside the
// job; the policy itself writes nothing.
func (Confined) Overhead() Overhead { return Overhead{} }
