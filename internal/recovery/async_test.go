package recovery_test

// External test package: these tests drive the real CC / PageRank jobs
// through the sync and async checkpoint policies, which would be an
// import cycle from package recovery itself.

import (
	"bytes"
	"testing"

	"optiflow/internal/algo/cc"
	"optiflow/internal/algo/pagerank"
	"optiflow/internal/checkpoint"
	"optiflow/internal/graph/gen"
	"optiflow/internal/recovery"
)

// snapshotBytes serialises a job's full state for byte-level
// comparison.
func snapshotBytes(t *testing.T, job recovery.Job) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := job.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The acceptance contract of the async pipeline: restoring from an
// asynchronously committed epoch yields byte-identical state to
// restoring a synchronous snapshot taken at the same barrier — even
// though the async write raced two more supersteps of live mutation.
func TestAsyncRestoreByteIdenticalToSync_CC(t *testing.T) {
	g := gen.Grid(12, 12)
	job := cc.New(g, 4)

	syncPol := recovery.NewCheckpoint(1, checkpoint.NewMemoryStore())
	asyncPol := recovery.NewAsyncCheckpoint(1, checkpoint.NewMemoryStore(), 4)
	if err := syncPol.Setup(job); err != nil {
		t.Fatal(err)
	}
	if err := asyncPol.Setup(job); err != nil {
		t.Fatal(err)
	}

	// Two supersteps, checkpointing at each barrier through both paths.
	for i := 0; i < 2; i++ {
		if _, err := job.Step(nil); err != nil {
			t.Fatal(err)
		}
		if err := syncPol.AfterSuperstep(job, i); err != nil {
			t.Fatal(err)
		}
		if err := asyncPol.AfterSuperstep(job, i); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotBytes(t, job)

	// The async write overlaps further supersteps; the capture must not
	// be polluted by them. Drain afterwards so the last epoch is the
	// restore target (without the fence, rolling back to an older
	// committed epoch would also be legal).
	for i := 2; i < 4; i++ {
		if _, err := job.Step(nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := asyncPol.Finish(job); err != nil {
		t.Fatal(err)
	}

	fromSync := cc.New(g, 4)
	resumeSync, err := syncPol.OnFailure(fromSync, recovery.Failure{Superstep: 3})
	if err != nil {
		t.Fatal(err)
	}
	fromAsync := cc.New(g, 4)
	resumeAsync, err := asyncPol.OnFailure(fromAsync, recovery.Failure{Superstep: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resumeSync != 2 || resumeAsync != 2 {
		t.Fatalf("resume supersteps = %d (sync), %d (async), want 2", resumeSync, resumeAsync)
	}
	syncBytes := snapshotBytes(t, fromSync)
	asyncBytes := snapshotBytes(t, fromAsync)
	if !bytes.Equal(syncBytes, want) {
		t.Fatal("sync restore drifted from the barrier-time state")
	}
	if !bytes.Equal(asyncBytes, want) {
		t.Fatal("async restore is not byte-identical to the sync restore")
	}
}

func TestAsyncRestoreByteIdenticalToSync_PageRank(t *testing.T) {
	g := gen.Twitter(800, 11)
	job := pagerank.New(g, 4, 0.85, nil)

	syncPol := recovery.NewCheckpoint(1, checkpoint.NewMemoryStore())
	asyncPol := recovery.NewAsyncCheckpoint(1, checkpoint.NewMemoryStore(), 4)
	asyncPol.Compress = true // the gzip path must not perturb bytes either
	if err := syncPol.Setup(job); err != nil {
		t.Fatal(err)
	}
	if err := asyncPol.Setup(job); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := job.Step(nil); err != nil {
			t.Fatal(err)
		}
		if err := syncPol.AfterSuperstep(job, i); err != nil {
			t.Fatal(err)
		}
		if err := asyncPol.AfterSuperstep(job, i); err != nil {
			t.Fatal(err)
		}
	}
	want := partitionBytes(t, job)
	if _, err := job.Step(nil); err != nil {
		t.Fatal(err)
	}
	if err := asyncPol.Finish(job); err != nil {
		t.Fatal(err)
	}

	fromSync := pagerank.New(g, 4, 0.85, nil)
	if _, err := syncPol.OnFailure(fromSync, recovery.Failure{Superstep: 3}); err != nil {
		t.Fatal(err)
	}
	fromAsync := pagerank.New(g, 4, 0.85, nil)
	if _, err := asyncPol.OnFailure(fromAsync, recovery.Failure{Superstep: 3}); err != nil {
		t.Fatal(err)
	}
	for p, wantP := range want {
		if got := partitionBytes(t, fromSync)[p]; !bytes.Equal(got, wantP) {
			t.Fatalf("sync restore: partition %d drifted from the barrier-time state", p)
		}
		if got := partitionBytes(t, fromAsync)[p]; !bytes.Equal(got, wantP) {
			t.Fatalf("async restore: partition %d is not byte-identical to the sync restore", p)
		}
	}
}

// partitionBytes encodes every partition of an incremental job (rank /
// label state without run-local scalars like the convergence tracker,
// which restores deliberately reset).
func partitionBytes(t *testing.T, job recovery.IncrementalJob) [][]byte {
	t.Helper()
	n := len(job.PartitionVersions())
	out := make([][]byte, n)
	for p := 0; p < n; p++ {
		var buf bytes.Buffer
		if err := job.SnapshotPartition(p, &buf); err != nil {
			t.Fatal(err)
		}
		out[p] = buf.Bytes()
	}
	return out
}

// Incremental async submissions stitch unchanged partitions to older
// epochs; the reassembled restore must still be byte-identical.
func TestAsyncIncrementalRestoreByteIdentical(t *testing.T) {
	g := gen.Grid(10, 10)
	job := cc.New(g, 4)
	pol := recovery.NewAsyncCheckpoint(1, checkpoint.NewMemoryStore(), 4)
	pol.Incremental = true
	if err := pol.Setup(job); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := job.Step(nil); err != nil {
			t.Fatal(err)
		}
		if err := pol.AfterSuperstep(job, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := pol.Finish(job); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, job)
	restored := cc.New(g, 4)
	if _, err := pol.OnFailure(restored, recovery.Failure{Superstep: 3}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotBytes(t, restored), want) {
		t.Fatal("incremental async restore is not byte-identical")
	}
}

// Finish is the normal-termination fence: after it returns, the store
// holds a committed epoch for the final submitted superstep.
func TestAsyncFinishDrainsInFlightEpochs(t *testing.T) {
	g := gen.Grid(8, 8)
	job := cc.New(g, 4)
	store := checkpoint.NewMemoryStore()
	pol := recovery.NewAsyncCheckpoint(1, store, 2)
	if err := pol.Setup(job); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := job.Step(nil); err != nil {
			t.Fatal(err)
		}
		if err := pol.AfterSuperstep(job, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := pol.Finish(job); err != nil {
		t.Fatal(err)
	}
	rec, _, ok, err := checkpoint.LoadCommitted(store, job.Name())
	if err != nil || !ok {
		t.Fatalf("no committed epoch after Finish: ok=%v err=%v", ok, err)
	}
	if rec.Superstep != 1 {
		t.Fatalf("final committed superstep = %d, want 1", rec.Superstep)
	}
	o := pol.Overhead()
	if o.Checkpoints != 3 { // Setup + two barriers
		t.Fatalf("commits = %d", o.Checkpoints)
	}
	if o.CommitTime < o.BarrierTime {
		t.Fatalf("commit time %v < barrier time %v", o.CommitTime, o.BarrierTime)
	}
}

// AsyncCheckpoint needs capture support; a plain Snapshotter job is
// rejected up front, not at the first failure.
func TestAsyncRequiresCaptureSupport(t *testing.T) {
	pol := recovery.NewAsyncCheckpoint(1, checkpoint.NewMemoryStore(), 2)
	if err := pol.Setup(plainJob{}); err == nil {
		t.Fatal("non-capturable job accepted")
	}
}

type plainJob struct{}

func (plainJob) Name() string                   { return "plain" }
func (plainJob) SnapshotTo(*bytes.Buffer) error { return nil }
func (plainJob) RestoreFrom([]byte) error       { return nil }
func (plainJob) ClearPartitions([]int)          {}
func (plainJob) Compensate([]int) error         { return nil }
func (plainJob) ResetToInitial() error          { return nil }
