package recovery

import (
	"bytes"
	"fmt"
	"time"

	"optiflow/internal/checkpoint"
	"optiflow/internal/clock"
)

// DeltaJob is implemented by jobs that can serialise just the state
// changes since their previous delta snapshot. Unlike per-partition
// incremental snapshots (IncrementalJob), a delta log shrinks with the
// algorithm's update rate even under hash partitioning, where every
// partition keeps receiving a trickle of updates until convergence.
type DeltaJob interface {
	Job
	// SnapshotDelta serialises all changes since the previous
	// SnapshotDelta (or since the last full SnapshotTo) and resets the
	// change tracking.
	SnapshotDelta(buf *bytes.Buffer) error
	// RestoreFromChain rebuilds the state from a base snapshot followed
	// by the ordered deltas, then marks the change tracking clean.
	RestoreFromChain(base []byte, deltas [][]byte) error
}

// DeltaCheckpoint is rollback recovery with delta-log snapshots: a full
// base snapshot once, then only the per-interval change sets. After
// CompactEvery deltas the chain is compacted into a fresh base, keeping
// recovery replay bounded.
type DeltaCheckpoint struct {
	// Interval is the superstep period between deltas (>= 1).
	Interval int
	// CompactEvery bounds the chain length (16 if zero).
	CompactEvery int
	// Store is the chain storage.
	Store checkpoint.LogStore

	lastSuper int
	ckptTime  time.Duration
}

// NewDeltaCheckpoint returns the policy with the given interval and
// store.
func NewDeltaCheckpoint(interval int, store checkpoint.LogStore) *DeltaCheckpoint {
	if interval < 1 {
		interval = 1
	}
	return &DeltaCheckpoint{Interval: interval, CompactEvery: 16, Store: store, lastSuper: -1}
}

// PolicyName implements Policy.
func (c *DeltaCheckpoint) PolicyName() string {
	return fmt.Sprintf("delta-checkpoint(k=%d)", c.Interval)
}

func (c *DeltaCheckpoint) deltaJob(job Job) (DeltaJob, error) {
	dj, ok := job.(DeltaJob)
	if !ok {
		return nil, fmt.Errorf("recovery: job %s does not support delta snapshots", job.Name())
	}
	return dj, nil
}

// Setup implements Policy: write the base snapshot of the initial
// state.
func (c *DeltaCheckpoint) Setup(job Job) error {
	dj, err := c.deltaJob(job)
	if err != nil {
		return err
	}
	return c.compact(dj, -1)
}

func (c *DeltaCheckpoint) compact(dj DeltaJob, superstep int) error {
	start := clock.Now()
	var buf bytes.Buffer
	if err := dj.SnapshotTo(&buf); err != nil {
		return fmt.Errorf("recovery: base snapshot of %s: %v", dj.Name(), err)
	}
	// Reset delta tracking so the next delta starts from this base: a
	// throw-away delta snapshot drains the pending change set.
	var drain bytes.Buffer
	if err := dj.SnapshotDelta(&drain); err != nil {
		return fmt.Errorf("recovery: draining change set of %s: %v", dj.Name(), err)
	}
	if err := c.Store.SaveBase(dj.Name(), superstep, buf.Bytes()); err != nil {
		return fmt.Errorf("recovery: saving base of %s: %v", dj.Name(), err)
	}
	c.lastSuper = superstep
	c.ckptTime += clock.Since(start)
	return nil
}

// AfterSuperstep implements Policy.
func (c *DeltaCheckpoint) AfterSuperstep(job Job, superstep int) error {
	if (superstep+1)%c.Interval != 0 {
		return nil
	}
	dj, err := c.deltaJob(job)
	if err != nil {
		return err
	}
	compactEvery := c.CompactEvery
	if compactEvery <= 0 {
		compactEvery = 16
	}
	if c.Store.DeltaCount(dj.Name()) >= compactEvery {
		return c.compact(dj, superstep)
	}
	start := clock.Now()
	var buf bytes.Buffer
	if err := dj.SnapshotDelta(&buf); err != nil {
		return fmt.Errorf("recovery: delta snapshot of %s: %v", dj.Name(), err)
	}
	if err := c.Store.AppendDelta(dj.Name(), superstep, buf.Bytes()); err != nil {
		return fmt.Errorf("recovery: appending delta of %s: %v", dj.Name(), err)
	}
	c.lastSuper = superstep
	c.ckptTime += clock.Since(start)
	return nil
}

// OnFailure implements Policy: replay base + deltas, resume after the
// newest checkpointed superstep.
func (c *DeltaCheckpoint) OnFailure(job Job, _ Failure) (int, error) {
	dj, err := c.deltaJob(job)
	if err != nil {
		return 0, err
	}
	base, deltas, superstep, ok, err := c.Store.LoadChain(dj.Name())
	if err != nil {
		return 0, fmt.Errorf("recovery: loading chain of %s: %v", dj.Name(), err)
	}
	if !ok {
		return 0, fmt.Errorf("recovery: no base snapshot for %s despite Setup", dj.Name())
	}
	if err := dj.RestoreFromChain(base, deltas); err != nil {
		return 0, fmt.Errorf("recovery: replaying chain of %s: %v", dj.Name(), err)
	}
	return superstep + 1, nil
}

// Overhead implements Policy.
func (c *DeltaCheckpoint) Overhead() Overhead {
	return Overhead{
		Checkpoints:    c.Store.Saves(),
		BytesWritten:   c.Store.BytesWritten(),
		CheckpointTime: c.ckptTime,
	}
}
