package recovery

import (
	"bytes"
	"fmt"
	"testing"

	"optiflow/internal/checkpoint"
)

// incrJob is a fake incremental job: each partition holds one string
// and a version counter.
type incrJob struct {
	fakeJob
	parts    []string
	versions []uint64
}

func newIncrJob(n int) *incrJob {
	j := &incrJob{fakeJob: fakeJob{name: "incr"}, parts: make([]string, n), versions: make([]uint64, n)}
	for p := range j.parts {
		j.parts[p] = fmt.Sprintf("p%d-v0", p)
		j.versions[p] = 1
	}
	return j
}

func (j *incrJob) set(p int, v string) {
	j.parts[p] = v
	j.versions[p]++
}

func (j *incrJob) PartitionVersions() []uint64 { return append([]uint64(nil), j.versions...) }

func (j *incrJob) SnapshotPartition(p int, buf *bytes.Buffer) error {
	_, err := buf.WriteString(j.parts[p])
	return err
}

func (j *incrJob) RestorePartition(p int, data []byte) error {
	j.parts[p] = string(data)
	j.versions[p]++
	return nil
}

func TestIncrementalCheckpointSavesOnlyChangedPartitions(t *testing.T) {
	store := checkpoint.NewMemoryStore()
	pol := NewIncrementalCheckpoint(1, store)
	job := newIncrJob(4)

	if err := pol.Setup(job); err != nil {
		t.Fatal(err)
	}
	if store.Saves() != 4 {
		t.Fatalf("setup saved %d partitions, want all 4", store.Saves())
	}

	// Only partition 2 changes: the next checkpoint writes one blob.
	job.set(2, "p2-v1")
	if err := pol.AfterSuperstep(job, 0); err != nil {
		t.Fatal(err)
	}
	if store.Saves() != 5 {
		t.Fatalf("saves = %d, want 5 (one incremental)", store.Saves())
	}

	// Nothing changes: the checkpoint writes nothing.
	if err := pol.AfterSuperstep(job, 1); err != nil {
		t.Fatal(err)
	}
	if store.Saves() != 5 {
		t.Fatalf("saves = %d after no-op checkpoint", store.Saves())
	}
}

func TestIncrementalCheckpointRestoreAssemblesConsistentState(t *testing.T) {
	store := checkpoint.NewMemoryStore()
	pol := NewIncrementalCheckpoint(1, store)
	job := newIncrJob(3)
	if err := pol.Setup(job); err != nil {
		t.Fatal(err)
	}

	job.set(0, "p0-s0")
	if err := pol.AfterSuperstep(job, 0); err != nil {
		t.Fatal(err)
	}
	job.set(1, "p1-s1")
	if err := pol.AfterSuperstep(job, 1); err != nil {
		t.Fatal(err)
	}

	// Corrupt everything, then recover: partition 0's blob is from
	// superstep 0, partition 1's from superstep 1, partition 2's from
	// setup — and since they did not change in between, the assembly is
	// the state at the last checkpoint.
	job.set(0, "garbage")
	job.set(1, "garbage")
	job.set(2, "garbage")
	resume, err := pol.OnFailure(job, Failure{Superstep: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resume != 2 {
		t.Fatalf("resume = %d, want 2", resume)
	}
	want := []string{"p0-s0", "p1-s1", "p2-v0"}
	for p, w := range want {
		if job.parts[p] != w {
			t.Fatalf("partition %d = %q, want %q", p, job.parts[p], w)
		}
	}

	// A post-restore checkpoint writes nothing: the state equals the
	// stored blobs.
	if saves := store.Saves(); saves != 5 {
		t.Fatalf("saves before = %d", saves)
	}
	if err := pol.AfterSuperstep(job, 2); err != nil {
		t.Fatal(err)
	}
	if store.Saves() != 5 {
		t.Fatalf("post-restore checkpoint rewrote partitions: %d saves", store.Saves())
	}
}

func TestIncrementalCheckpointRejectsPlainJobs(t *testing.T) {
	pol := NewIncrementalCheckpoint(1, checkpoint.NewMemoryStore())
	if err := pol.Setup(&fakeJob{name: "plain"}); err == nil {
		t.Fatal("plain job accepted")
	}
}

func TestIncrementalCheckpointDiskStore(t *testing.T) {
	store, err := checkpoint.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pol := NewIncrementalCheckpoint(1, store)
	job := newIncrJob(2)
	if err := pol.Setup(job); err != nil {
		t.Fatal(err)
	}
	job.set(1, "disk-v1")
	if err := pol.AfterSuperstep(job, 0); err != nil {
		t.Fatal(err)
	}
	job.set(0, "garbage")
	job.set(1, "garbage")
	if _, err := pol.OnFailure(job, Failure{Superstep: 1}); err != nil {
		t.Fatal(err)
	}
	if job.parts[0] != "p0-v0" || job.parts[1] != "disk-v1" {
		t.Fatalf("restored parts = %v", job.parts)
	}
}
