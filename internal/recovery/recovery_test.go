package recovery

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"optiflow/internal/checkpoint"
)

// fakeJob records every recovery operation applied to it.
type fakeJob struct {
	name     string
	state    string // serialised verbatim into snapshots
	cleared  [][]int
	comps    [][]int
	resets   int
	log      []string
	failSnap bool
}

func (f *fakeJob) Name() string { return f.name }

func (f *fakeJob) SnapshotTo(buf *bytes.Buffer) error {
	if f.failSnap {
		return errors.New("snapshot exploded")
	}
	_, err := buf.WriteString(f.state)
	f.log = append(f.log, "snapshot:"+f.state)
	return err
}

func (f *fakeJob) RestoreFrom(data []byte) error {
	f.state = string(data)
	f.log = append(f.log, "restore:"+f.state)
	return nil
}

func (f *fakeJob) ClearPartitions(parts []int) {
	f.cleared = append(f.cleared, parts)
	f.log = append(f.log, fmt.Sprintf("clear:%v", parts))
}

func (f *fakeJob) Compensate(lost []int) error {
	f.comps = append(f.comps, lost)
	f.log = append(f.log, fmt.Sprintf("compensate:%v", lost))
	return nil
}

func (f *fakeJob) ResetToInitial() error {
	f.resets++
	f.state = "initial"
	f.log = append(f.log, "reset")
	return nil
}

func TestNonePolicyAbortsOnFailure(t *testing.T) {
	var p None
	job := &fakeJob{name: "j"}
	if err := p.Setup(job); err != nil {
		t.Fatal(err)
	}
	if err := p.AfterSuperstep(job, 0); err != nil {
		t.Fatal(err)
	}
	_, err := p.OnFailure(job, Failure{Superstep: 2, Workers: []int{1}})
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("err = %v", err)
	}
	if p.Overhead() != (Overhead{}) {
		t.Fatal("None should have zero overhead")
	}
}

func TestRestartPolicyRewindsToZero(t *testing.T) {
	var p Restart
	job := &fakeJob{name: "j", state: "progressed"}
	resume, err := p.OnFailure(job, Failure{Superstep: 5})
	if err != nil || resume != 0 {
		t.Fatalf("resume = %d, err = %v", resume, err)
	}
	if job.resets != 1 || job.state != "initial" {
		t.Fatal("job not reset")
	}
}

func TestOptimisticPolicyCompensatesAndContinues(t *testing.T) {
	var p Optimistic
	job := &fakeJob{name: "j"}
	if err := p.Setup(job); err != nil {
		t.Fatal(err)
	}
	// Failure-free execution must do strictly nothing.
	for i := 0; i < 5; i++ {
		if err := p.AfterSuperstep(job, i); err != nil {
			t.Fatal(err)
		}
	}
	if len(job.log) != 0 {
		t.Fatalf("optimistic policy touched the job during failure-free run: %v", job.log)
	}
	resume, err := p.OnFailure(job, Failure{Superstep: 7, LostPartitions: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if resume != 8 {
		t.Fatalf("resume = %d, want 8 (continue)", resume)
	}
	if !reflect.DeepEqual(job.comps, [][]int{{1, 3}}) {
		t.Fatalf("compensated %v", job.comps)
	}
	if p.Overhead() != (Overhead{}) {
		t.Fatal("optimistic must report zero overhead")
	}
}

func TestCheckpointPolicyLifecycle(t *testing.T) {
	store := checkpoint.NewMemoryStore()
	p := NewCheckpoint(2, store)
	job := &fakeJob{name: "j", state: "s0"}

	// Setup takes the initial snapshot (superstep -1).
	if err := p.Setup(job); err != nil {
		t.Fatal(err)
	}
	if store.Saves() != 1 {
		t.Fatalf("saves after setup = %d", store.Saves())
	}

	// Interval-2 snapshots trigger after supersteps 1, 3, ...
	job.state = "s1"
	if err := p.AfterSuperstep(job, 0); err != nil {
		t.Fatal(err)
	}
	if store.Saves() != 1 {
		t.Fatal("snapshot taken off-interval")
	}
	if err := p.AfterSuperstep(job, 1); err != nil {
		t.Fatal(err)
	}
	if store.Saves() != 2 {
		t.Fatal("interval snapshot missing")
	}

	// Failure: restore the superstep-1 snapshot, resume at 2.
	job.state = "s4-corrupted"
	resume, err := p.OnFailure(job, Failure{Superstep: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resume != 2 {
		t.Fatalf("resume = %d, want 2", resume)
	}
	if job.state != "s1" {
		t.Fatalf("restored state = %q", job.state)
	}

	oh := p.Overhead()
	if oh.Checkpoints != 2 || oh.BytesWritten == 0 {
		t.Fatalf("overhead = %+v", oh)
	}
	if !strings.Contains(p.PolicyName(), "k=2") {
		t.Fatalf("name = %q", p.PolicyName())
	}
}

func TestCheckpointFailureBeforeFirstIntervalRestoresInitial(t *testing.T) {
	p := NewCheckpoint(5, checkpoint.NewMemoryStore())
	job := &fakeJob{name: "j", state: "initial-state"}
	if err := p.Setup(job); err != nil {
		t.Fatal(err)
	}
	job.state = "mid-flight"
	resume, err := p.OnFailure(job, Failure{Superstep: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resume != 0 || job.state != "initial-state" {
		t.Fatalf("resume=%d state=%q", resume, job.state)
	}
}

func TestCheckpointSnapshotErrorPropagates(t *testing.T) {
	p := NewCheckpoint(1, checkpoint.NewMemoryStore())
	job := &fakeJob{name: "j", failSnap: true}
	if err := p.Setup(job); err == nil {
		t.Fatal("snapshot error swallowed")
	}
}

func TestCheckpointIntervalClamped(t *testing.T) {
	p := NewCheckpoint(0, checkpoint.NewMemoryStore())
	if p.Interval != 1 {
		t.Fatalf("interval = %d, want clamp to 1", p.Interval)
	}
}

func TestPolicyNames(t *testing.T) {
	if (None{}).PolicyName() != "none" ||
		(Restart{}).PolicyName() != "restart" ||
		(Optimistic{}).PolicyName() != "optimistic" {
		t.Fatal("policy names changed")
	}
}
