package recovery

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"optiflow/internal/checkpoint"
)

// deltaJob is a fake DeltaJob: its state is a string, deltas record the
// appended suffix since the last delta snapshot.
type deltaJob struct {
	fakeJob
	pending string // changes since the last delta
}

func (d *deltaJob) append(s string) {
	d.state += s
	d.pending += s
}

func (d *deltaJob) SnapshotDelta(buf *bytes.Buffer) error {
	_, err := buf.WriteString(d.pending)
	d.pending = ""
	return err
}

func (d *deltaJob) RestoreFromChain(base []byte, deltas [][]byte) error {
	d.state = string(base)
	for _, delta := range deltas {
		d.state += string(delta)
	}
	d.pending = ""
	return nil
}

func TestDeltaCheckpointLifecycle(t *testing.T) {
	store := checkpoint.NewMemoryLogStore()
	pol := NewDeltaCheckpoint(1, store)
	job := &deltaJob{fakeJob: fakeJob{name: "dj", state: "base."}}

	if err := pol.Setup(job); err != nil {
		t.Fatal(err)
	}
	if store.DeltaCount("dj") != 0 || store.Saves() != 1 {
		t.Fatalf("after setup: %d deltas, %d saves", store.DeltaCount("dj"), store.Saves())
	}

	job.append("s0.")
	if err := pol.AfterSuperstep(job, 0); err != nil {
		t.Fatal(err)
	}
	job.append("s1.")
	if err := pol.AfterSuperstep(job, 1); err != nil {
		t.Fatal(err)
	}
	if store.DeltaCount("dj") != 2 {
		t.Fatalf("deltas = %d", store.DeltaCount("dj"))
	}

	// Failure at superstep 2: chain replay reproduces base+s0+s1 and
	// resumes at 2.
	job.state = "garbage"
	resume, err := pol.OnFailure(job, Failure{Superstep: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resume != 2 || job.state != "base.s0.s1." {
		t.Fatalf("resume=%d state=%q", resume, job.state)
	}

	oh := pol.Overhead()
	if oh.Checkpoints != 3 || oh.BytesWritten == 0 {
		t.Fatalf("overhead = %+v", oh)
	}
	if !strings.Contains(pol.PolicyName(), "delta-checkpoint") {
		t.Fatalf("name = %q", pol.PolicyName())
	}
}

func TestDeltaCheckpointCompacts(t *testing.T) {
	store := checkpoint.NewMemoryLogStore()
	pol := NewDeltaCheckpoint(1, store)
	pol.CompactEvery = 3
	job := &deltaJob{fakeJob: fakeJob{name: "dj", state: "b"}}
	if err := pol.Setup(job); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 10; s++ {
		job.append(fmt.Sprintf("|%d", s))
		if err := pol.AfterSuperstep(job, s); err != nil {
			t.Fatal(err)
		}
		if store.DeltaCount("dj") > 3 {
			t.Fatalf("chain grew past the bound: %d", store.DeltaCount("dj"))
		}
	}
	// Recovery from a compacted chain is still exact.
	want := job.state
	job.state = "garbage"
	if _, err := pol.OnFailure(job, Failure{Superstep: 10}); err != nil {
		t.Fatal(err)
	}
	if job.state != want {
		t.Fatalf("restored %q, want %q", job.state, want)
	}
}

func TestDeltaCheckpointRejectsPlainJobs(t *testing.T) {
	pol := NewDeltaCheckpoint(1, checkpoint.NewMemoryLogStore())
	if err := pol.Setup(&fakeJob{name: "plain"}); err == nil {
		t.Fatal("plain job accepted")
	}
}

// confinedJob is a fake ConfinedJob recording recoveries.
type confinedJob struct {
	fakeJob
	recovered [][]int
	failNext  bool
}

func (c *confinedJob) RecoverConfined(lost []int) error {
	if c.failNext {
		return fmt.Errorf("replica gone")
	}
	c.recovered = append(c.recovered, lost)
	return nil
}

func TestConfinedPolicy(t *testing.T) {
	var p Confined
	if p.PolicyName() != "confined" {
		t.Fatal("name changed")
	}
	job := &confinedJob{fakeJob: fakeJob{name: "cj"}}
	if err := p.Setup(job); err != nil {
		t.Fatal(err)
	}
	if err := p.AfterSuperstep(job, 0); err != nil {
		t.Fatal(err)
	}
	if len(job.log) != 0 {
		t.Fatal("confined policy must be free during failure-free execution")
	}
	resume, err := p.OnFailure(job, Failure{Superstep: 6, LostPartitions: []int{2}})
	if err != nil || resume != 7 {
		t.Fatalf("resume=%d err=%v", resume, err)
	}
	if len(job.recovered) != 1 || job.recovered[0][0] != 2 {
		t.Fatalf("recovered %v", job.recovered)
	}
	if p.Overhead() != (Overhead{}) {
		t.Fatal("confined policy itself writes nothing")
	}

	// Errors propagate.
	job.failNext = true
	if _, err := p.OnFailure(job, Failure{Superstep: 7}); err == nil {
		t.Fatal("recovery error swallowed")
	}
	// Plain jobs are rejected.
	if _, err := p.OnFailure(&fakeJob{name: "plain"}, Failure{}); err == nil {
		t.Fatal("plain job accepted")
	}
}
