package recovery

import (
	"fmt"
	"time"

	"optiflow/internal/checkpoint"
	"optiflow/internal/clock"
)

// AsyncJob is implemented by jobs that support the asynchronous
// checkpoint pipeline: a cheap consistent capture at the superstep
// barrier (copy-on-write views of the partitioned state) that
// background goroutines encode and persist while the next superstep
// already mutates the live state.
type AsyncJob interface {
	IncrementalJob
	// CaptureSnapshot returns an immutable capture of the current
	// iteration state. It must be O(partitions), not O(entries): the
	// whole point is that the barrier no longer pays for serialisation.
	CaptureSnapshot() checkpoint.PartitionSnapshot
}

// Finisher is implemented by policies with background work in flight.
// iterate.Loop calls Finish once when the iteration terminates
// normally, so a checkpoint still being written can land (or fail
// loudly) before the run is declared done.
type Finisher interface {
	Finish(job Job) error
}

// AsyncCheckpoint is pessimistic rollback recovery with the capture /
// persist split: every Interval supersteps the barrier only takes a
// copy-on-write capture and submits it to a background writer; per-
// partition encoding, optional gzip and stable-storage writes overlap
// the following superstep(s). An epoch becomes restorable only once its
// atomic commit marker lands (checkpoint.Commit), and OnFailure fences
// the writer — discarding queued epochs, awaiting the one mid-write —
// so a torn snapshot is never restored.
type AsyncCheckpoint struct {
	// Interval is the superstep period between snapshots (>= 1).
	Interval int
	// Store is the stable storage target. Pass it uncompressed and set
	// Compress instead: the pipeline compresses per partition on the
	// encoder goroutines.
	Store checkpoint.Store
	// Parallelism is the number of encoder goroutines per checkpoint.
	Parallelism int
	// Compress gzip-compresses partition blobs before they hit Store.
	Compress bool
	// Incremental submits only the partitions whose version changed
	// since the last submission; the commit record stitches unchanged
	// partitions to their older epochs.
	Incremental bool

	writer      *checkpoint.AsyncWriter
	saved       []uint64 // versions at the last submission (Incremental)
	barrierTime time.Duration
}

// NewAsyncCheckpoint returns the policy with the given interval, store
// and encoder parallelism.
func NewAsyncCheckpoint(interval int, store checkpoint.Store, parallelism int) *AsyncCheckpoint {
	if interval < 1 {
		interval = 1
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return &AsyncCheckpoint{Interval: interval, Store: store, Parallelism: parallelism}
}

// PolicyName implements Policy.
func (c *AsyncCheckpoint) PolicyName() string {
	return fmt.Sprintf("async-checkpoint(k=%d,p=%d)", c.Interval, c.Parallelism)
}

func (c *AsyncCheckpoint) async(job Job) (AsyncJob, error) {
	aj, ok := job.(AsyncJob)
	if !ok {
		return nil, fmt.Errorf("recovery: job %s does not support async capture", job.Name())
	}
	return aj, nil
}

// Setup implements Policy: capture and submit the initial state so a
// failure before the first periodic checkpoint rolls back to superstep
// 0. The write itself overlaps the first supersteps.
func (c *AsyncCheckpoint) Setup(job Job) error {
	aj, err := c.async(job)
	if err != nil {
		return err
	}
	c.writer = checkpoint.NewAsyncWriter(c.Store, job.Name(), checkpoint.AsyncOptions{
		Parallelism: c.Parallelism,
		Compress:    c.Compress,
	})
	c.saved = append([]uint64(nil), aj.PartitionVersions()...)
	return c.submit(aj, -1, nil)
}

// AfterSuperstep implements Policy: the barrier cost is one capture +
// queue insert.
func (c *AsyncCheckpoint) AfterSuperstep(job Job, superstep int) error {
	if (superstep+1)%c.Interval != 0 {
		return nil
	}
	aj, err := c.async(job)
	if err != nil {
		return err
	}
	var dirty []int
	if c.Incremental {
		versions := aj.PartitionVersions()
		dirty = make([]int, 0, len(versions))
		for p, v := range versions {
			if v != c.saved[p] {
				dirty = append(dirty, p)
				c.saved[p] = v
			}
		}
		if len(dirty) == 0 {
			return nil
		}
	}
	return c.submit(aj, superstep, dirty)
}

func (c *AsyncCheckpoint) submit(aj AsyncJob, superstep int, dirty []int) error {
	start := clock.Now()
	snap := aj.CaptureSnapshot()
	err := c.writer.Submit(superstep, snap, dirty)
	c.barrierTime += clock.Since(start)
	if err != nil {
		return fmt.Errorf("recovery: submitting checkpoint of %s after superstep %d: %v", aj.Name(), superstep, err)
	}
	return nil
}

// OnFailure implements Policy: fence the writer (drop queued epochs,
// await the one mid-write), then restore the newest committed epoch in
// parallel and resume right after the superstep it captured.
func (c *AsyncCheckpoint) OnFailure(job Job, _ Failure) (int, error) {
	aj, err := c.async(job)
	if err != nil {
		return 0, err
	}
	c.writer.CancelPending()
	if err := c.writer.Drain(); err != nil {
		return 0, fmt.Errorf("recovery: checkpoint writer of %s failed: %v", aj.Name(), err)
	}
	rec, blobs, ok, err := checkpoint.LoadCommitted(c.Store, aj.Name())
	if err != nil {
		return 0, fmt.Errorf("recovery: loading committed checkpoint of %s: %v", aj.Name(), err)
	}
	if !ok {
		return 0, fmt.Errorf("recovery: no committed checkpoint for %s despite Setup", aj.Name())
	}
	if err := checkpoint.RestorePartitions(blobs, c.Parallelism, aj.RestorePartition); err != nil {
		return 0, fmt.Errorf("recovery: restoring %s: %v", aj.Name(), err)
	}
	// Restoring counts as a mutation; resync so the next incremental
	// submission only writes genuinely new changes.
	copy(c.saved, aj.PartitionVersions())
	return rec.Superstep + 1, nil
}

// Finish implements Finisher: await in-flight commits at normal
// termination so the run never ends with a half-written epoch.
func (c *AsyncCheckpoint) Finish(job Job) error {
	if c.writer == nil {
		return nil
	}
	if err := c.writer.Drain(); err != nil {
		return fmt.Errorf("recovery: draining checkpoint writer of %s: %v", job.Name(), err)
	}
	return nil
}

// Overhead implements Policy. CheckpointTime is what the iteration
// actually stalled for (the barrier captures), matching its meaning for
// the synchronous policies where stall and total cost coincide;
// CommitTime is the end-to-end capture-to-durable cost that ran in the
// background.
func (c *AsyncCheckpoint) Overhead() Overhead {
	var stats checkpoint.AsyncStats
	if c.writer != nil {
		stats = c.writer.Stats()
	}
	return Overhead{
		Checkpoints:    stats.Commits,
		BytesWritten:   c.Store.BytesWritten(),
		CheckpointTime: c.barrierTime,
		BarrierTime:    c.barrierTime,
		CommitTime:     stats.CommitTime,
	}
}
