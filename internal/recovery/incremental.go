package recovery

import (
	"bytes"
	"fmt"
	"time"

	"optiflow/internal/checkpoint"
	"optiflow/internal/clock"
)

// IncrementalJob is implemented by jobs whose state supports
// per-partition snapshots. Incremental checkpointing then writes only
// the partitions that changed since the previous checkpoint — a large
// saving for delta iterations, where most partitions stop changing long
// before convergence.
type IncrementalJob interface {
	Job
	// PartitionVersions returns one change counter per partition; it
	// must change whenever that partition's state changes.
	PartitionVersions() []uint64
	// SnapshotPartition serialises one partition's full state.
	SnapshotPartition(p int, buf *bytes.Buffer) error
	// RestorePartition replaces one partition's state from a snapshot.
	RestorePartition(p int, data []byte) error
}

// IncrementalCheckpoint is rollback recovery with per-partition
// incremental snapshots: every Interval supersteps it re-writes only
// the partitions whose version changed. On failure it assembles the
// latest blob of every partition — which is exactly the consistent
// state at the last checkpoint, because an unchanged partition's old
// blob still matches its contents — restores it, and resumes after the
// checkpointed superstep.
type IncrementalCheckpoint struct {
	// Interval is the superstep period between checkpoints (>= 1).
	Interval int
	// Store is the per-partition stable storage.
	Store checkpoint.PartStore
	// Parallelism is the number of goroutines encoding (and on failure
	// restoring) partitions; <= 1 keeps the single-threaded path.
	Parallelism int

	saved     []uint64 // versions at the last checkpoint
	lastSuper int      // superstep of the last completed checkpoint
	ckptTime  time.Duration
}

// NewIncrementalCheckpoint returns the policy with the given interval
// and store.
func NewIncrementalCheckpoint(interval int, store checkpoint.PartStore) *IncrementalCheckpoint {
	if interval < 1 {
		interval = 1
	}
	return &IncrementalCheckpoint{Interval: interval, Store: store, lastSuper: -1}
}

// PolicyName implements Policy.
func (c *IncrementalCheckpoint) PolicyName() string {
	return fmt.Sprintf("incremental-checkpoint(k=%d)", c.Interval)
}

func (c *IncrementalCheckpoint) incremental(job Job) (IncrementalJob, error) {
	ij, ok := job.(IncrementalJob)
	if !ok {
		return nil, fmt.Errorf("recovery: job %s does not support per-partition snapshots", job.Name())
	}
	return ij, nil
}

// Setup implements Policy: snapshot every partition of the initial
// state.
func (c *IncrementalCheckpoint) Setup(job Job) error {
	ij, err := c.incremental(job)
	if err != nil {
		return err
	}
	versions := ij.PartitionVersions()
	c.saved = make([]uint64, len(versions))
	for p := range c.saved {
		c.saved[p] = versions[p] - 1 // force the first save of every partition
	}
	return c.snapshot(ij, -1)
}

// AfterSuperstep implements Policy.
func (c *IncrementalCheckpoint) AfterSuperstep(job Job, superstep int) error {
	if (superstep+1)%c.Interval != 0 {
		return nil
	}
	ij, err := c.incremental(job)
	if err != nil {
		return err
	}
	return c.snapshot(ij, superstep)
}

func (c *IncrementalCheckpoint) snapshot(ij IncrementalJob, superstep int) error {
	start := clock.Now()
	versions := ij.PartitionVersions()
	dirty := make([]int, 0, len(versions))
	for p, v := range versions {
		if v == c.saved[p] {
			continue // unchanged since the last checkpoint
		}
		dirty = append(dirty, p)
	}
	// The loop is stalled at the barrier, so encoding the live state
	// from several goroutines over distinct partitions is safe.
	err := checkpoint.EncodePartitions(liveSnap{ij, len(versions)}, dirty, c.Parallelism,
		func(p int, data []byte) error {
			return c.Store.SavePartition(ij.Name(), p, superstep, data)
		})
	if err != nil {
		return fmt.Errorf("recovery: snapshotting %s: %v", ij.Name(), err)
	}
	for _, p := range dirty {
		c.saved[p] = versions[p]
	}
	c.lastSuper = superstep
	c.ckptTime += clock.Since(start)
	return nil
}

// liveSnap adapts an IncrementalJob's live state to the capture
// interface the parallel encode helper expects.
type liveSnap struct {
	ij     IncrementalJob
	nparts int
}

func (s liveSnap) NumPartitions() int { return s.nparts }

func (s liveSnap) SnapshotPartition(p int, buf *bytes.Buffer) error {
	return s.ij.SnapshotPartition(p, buf)
}

// OnFailure implements Policy: restore every partition's latest blob
// and resume after the last completed checkpoint.
func (c *IncrementalCheckpoint) OnFailure(job Job, _ Failure) (int, error) {
	ij, err := c.incremental(job)
	if err != nil {
		return 0, err
	}
	blobs, err := c.Store.LoadPartitions(ij.Name())
	if err != nil {
		return 0, fmt.Errorf("recovery: loading partitions of %s: %v", ij.Name(), err)
	}
	versions := ij.PartitionVersions()
	if len(blobs) != len(versions) {
		return 0, fmt.Errorf("recovery: %s: %d partition blobs for %d partitions", ij.Name(), len(blobs), len(versions))
	}
	if err := checkpoint.RestorePartitions(blobs, c.Parallelism, ij.RestorePartition); err != nil {
		return 0, fmt.Errorf("recovery: restoring %s: %v", ij.Name(), err)
	}
	// Restoring counts as a mutation; resync the saved versions so the
	// next checkpoint only writes genuinely new changes.
	versions = ij.PartitionVersions()
	copy(c.saved, versions)
	return c.lastSuper + 1, nil
}

// Overhead implements Policy: the barrier stalls for the whole
// (parallel but synchronous) snapshot, so all three times coincide.
func (c *IncrementalCheckpoint) Overhead() Overhead {
	return Overhead{
		Checkpoints:    c.Store.Saves(),
		BytesWritten:   c.Store.BytesWritten(),
		CheckpointTime: c.ckptTime,
		BarrierTime:    c.ckptTime,
		CommitTime:     c.ckptTime,
	}
}
