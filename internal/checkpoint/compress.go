package checkpoint

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Compressed wraps a Store with gzip compression: snapshots are
// compressed before hitting stable storage and decompressed on load.
// Iteration state is highly compressible (gob streams of similar
// entries), so this trades CPU for a large cut in checkpoint volume —
// experiment E6 reports both sides.
func Compressed(inner Store) Store {
	return &compressedStore{inner: inner}
}

type compressedStore struct {
	inner Store
	raw   atomic.Int64 // uncompressed bytes, for the compression-ratio report
}

// gzipPool recycles gzip.Writers across snapshots via Reset. A
// gzip.Writer carries ~1.4 MB of deflate tables; re-allocating one per
// checkpoint dominated the compression path's allocations (asserted by
// BenchmarkCheckpointCompress).
var gzipPool = sync.Pool{
	New: func() any { return gzip.NewWriter(io.Discard) },
}

func compress(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzipPool.Get().(*gzip.Writer)
	zw.Reset(&buf)
	if _, err := zw.Write(data); err != nil {
		gzipPool.Put(zw)
		return nil, fmt.Errorf("checkpoint: compressing snapshot: %v", err)
	}
	if err := zw.Close(); err != nil {
		gzipPool.Put(zw)
		return nil, fmt.Errorf("checkpoint: compressing snapshot: %v", err)
	}
	gzipPool.Put(zw)
	return buf.Bytes(), nil
}

func decompress(data []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decompressing snapshot: %v", err)
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decompressing snapshot: %v", err)
	}
	return out, nil
}

// Save implements Store.
func (c *compressedStore) Save(job string, superstep int, data []byte) error {
	packed, err := compress(data)
	if err != nil {
		return err
	}
	c.raw.Add(int64(len(data)))
	return c.inner.Save(job, superstep, packed)
}

// Load implements Store.
func (c *compressedStore) Load(job string) ([]byte, int, bool, error) {
	packed, superstep, ok, err := c.inner.Load(job)
	if err != nil || !ok {
		return nil, superstep, ok, err
	}
	data, err := decompress(packed)
	if err != nil {
		return nil, 0, false, err
	}
	return data, superstep, true, nil
}

// BytesWritten implements Store: the compressed (actually stored)
// volume.
func (c *compressedStore) BytesWritten() int64 { return c.inner.BytesWritten() }

// Saves implements Store.
func (c *compressedStore) Saves() int { return c.inner.Saves() }

// Delete implements Deleter by forwarding to the inner store (a no-op
// if the inner store cannot delete).
func (c *compressedStore) Delete(job string) error {
	if del, ok := c.inner.(Deleter); ok {
		return del.Delete(job)
	}
	return nil
}

// RawBytes returns the pre-compression volume, for reporting the
// compression ratio.
func (c *compressedStore) RawBytes() int64 { return c.raw.Load() }

// RawBytes reports the uncompressed snapshot volume of a Compressed
// store (0 for other stores).
func RawBytes(s Store) int64 {
	if c, ok := s.(*compressedStore); ok {
		return c.RawBytes()
	}
	return 0
}
