package checkpoint

// opacity_test.go pins the blob-opacity contract the raw wire path
// leans on (PR 10, DESIGN.md §2.9): checkpoint stores treat snapshot
// blobs as opaque bytes. The proc runtime now saves raw columnar
// snapshot blobs (magic 0x00 'O' 'F' 'S') through the same Store
// plumbing that used to carry gob streams, and restores sniff the
// codec from the first blob byte — so any store or decorator that
// inspects, trims, re-encodes, or otherwise perturbs blob bytes would
// silently corrupt codec sniffing. Every blob below must come back
// byte-identical through every store.

import (
	"bytes"
	"testing"
)

// opaqueBlobs are adversarial payloads for a store that wrongly
// interprets content: the raw snapshot magic (leading NUL), a gzip
// magic prefix (must not be mistaken for the decorator's own framing),
// text, and high-entropy binary.
func opaqueBlobs() map[string][]byte {
	lcg := uint64(0x9E3779B97F4A7C15)
	noise := make([]byte, 4096)
	for i := range noise {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		noise[i] = byte(lcg >> 56)
	}
	return map[string][]byte{
		"raw-snapshot-magic": append([]byte{0x00, 'O', 'F', 'S', 0x01, 0x02}, noise[:256]...),
		"gzip-magic-prefix":  append([]byte{0x1f, 0x8b, 0x08, 0x00}, noise[:256]...),
		"all-zero":           make([]byte, 512),
		"single-nul":         {0x00},
		"text":               []byte("not a snapshot at all\n"),
		"high-entropy":       noise,
	}
}

func testStoreOpacity(t *testing.T, store Store) {
	t.Helper()
	for name, blob := range opaqueBlobs() {
		t.Run(name, func(t *testing.T) {
			job := "opaque-" + name
			if err := store.Save(job, 3, blob); err != nil {
				t.Fatalf("save: %v", err)
			}
			got, superstep, ok, err := store.Load(job)
			if err != nil || !ok {
				t.Fatalf("load: ok=%v err=%v", ok, err)
			}
			if superstep != 3 {
				t.Errorf("superstep = %d, want 3", superstep)
			}
			if !bytes.Equal(got, blob) {
				t.Errorf("blob came back perturbed: %d bytes, want %d", len(got), len(blob))
			}
		})
	}
}

func TestMemoryStoreOpacity(t *testing.T) {
	testStoreOpacity(t, NewMemoryStore())
}

func TestDiskStoreOpacity(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStoreOpacity(t, d)
}

func TestCompressedStoreOpacity(t *testing.T) {
	testStoreOpacity(t, Compressed(NewMemoryStore()))
}

func TestCompressedDiskStoreOpacity(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStoreOpacity(t, Compressed(d))
}
