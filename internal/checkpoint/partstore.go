package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// PartStore persists per-partition snapshots for incremental
// checkpointing: each save replaces one partition's blob, and a restore
// assembles the latest blob of every partition. Because an incremental
// checkpoint only writes the partitions that changed since the previous
// one, an unchanged partition's latest blob still equals its current
// contents — the assembly is a consistent state as of the last
// checkpoint.
type PartStore interface {
	// SavePartition persists partition part's snapshot taken after the
	// given superstep, replacing any previous blob for that partition.
	SavePartition(job string, part, superstep int, data []byte) error
	// LoadPartitions returns the latest blob of every saved partition.
	LoadPartitions(job string) (map[int][]byte, error)
	// BytesWritten returns the cumulative snapshot volume.
	BytesWritten() int64
	// Saves returns how many partition snapshots were taken.
	Saves() int
}

// SavePartition implements PartStore for the in-memory store.
func (m *MemoryStore) SavePartition(job string, part, superstep int, data []byte) error {
	return m.Save(partKey(job, part), superstep, data)
}

// LoadPartitions implements PartStore for the in-memory store.
func (m *MemoryStore) LoadPartitions(job string) (map[int][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int][]byte)
	prefix := partPrefix(job)
	for key, snap := range m.snaps {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		p, err := strconv.Atoi(strings.TrimPrefix(key, prefix))
		if err != nil {
			continue
		}
		out[p] = append([]byte(nil), snap.data...)
	}
	return out, nil
}

// SavePartition implements PartStore for the disk store.
func (d *DiskStore) SavePartition(job string, part, superstep int, data []byte) error {
	return d.Save(partKey(job, part), superstep, data)
}

// LoadPartitions implements PartStore for the disk store.
func (d *DiskStore) LoadPartitions(job string) (map[int][]byte, error) {
	d.mu.Lock()
	dir := d.dir
	d.mu.Unlock()
	prefix := partPrefix(job)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: listing %s: %v", dir, err)
	}
	out := make(map[int][]byte)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		p, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".ckpt"))
		if err != nil {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: reading %s: %v", name, err)
		}
		data, _, err := decodeSnapFile(raw)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: partition blob %s: %v", name, err)
		}
		out[p] = data
	}
	return out, nil
}

// partPrefix returns the key prefix shared by every partition blob of
// job. Deriving it explicitly (rather than trimming a formatted key)
// keeps job names containing digits or '#' working.
func partPrefix(job string) string {
	return job + "#part-"
}

func partKey(job string, part int) string {
	return partPrefix(job) + strconv.Itoa(part)
}
