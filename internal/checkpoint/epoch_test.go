package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestLoadCommittedIgnoresUncommittedEpoch(t *testing.T) {
	s := NewMemoryStore()
	// Partition blobs land but the commit marker never does (crash
	// mid-write): the epoch must stay invisible.
	for p := 0; p < 3; p++ {
		if err := SaveEpochPartition(s, "job", 1, 0, p, []byte{byte(p)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok, err := LoadCommitted(s, "job"); err != nil || ok {
		t.Fatalf("uncommitted epoch visible: ok=%v err=%v", ok, err)
	}
}

func TestCommitThenLoadRoundTrip(t *testing.T) {
	s := NewMemoryStore()
	want := map[int][]byte{0: []byte("p0"), 1: []byte("p1")}
	rec := CommitRecord{Epoch: 1, Superstep: 4, Parts: map[int]uint64{0: 1, 1: 1}}
	for p, data := range want {
		if err := SaveEpochPartition(s, "job", 1, 4, p, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := Commit(s, "job", rec); err != nil {
		t.Fatal(err)
	}
	got, blobs, ok, err := LoadCommitted(s, "job")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got.Epoch != 1 || got.Superstep != 4 {
		t.Fatalf("record = %+v", got)
	}
	for p, data := range want {
		if !bytes.Equal(blobs[p], data) {
			t.Fatalf("partition %d = %q", p, blobs[p])
		}
	}
}

func TestLoadCommittedRejectsMissingBlob(t *testing.T) {
	s := NewMemoryStore()
	if err := SaveEpochPartition(s, "job", 1, 0, 0, []byte("p0")); err != nil {
		t.Fatal(err)
	}
	// The record references partition 1, which was never written. A
	// partial result must never come back.
	rec := CommitRecord{Epoch: 1, Superstep: 0, Parts: map[int]uint64{0: 1, 1: 1}}
	if err := Commit(s, "job", rec); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadCommitted(s, "job"); err == nil {
		t.Fatal("commit referencing a missing blob should not load")
	}
}

func TestCommitStitchesOlderEpochs(t *testing.T) {
	s := NewMemoryStore()
	// Epoch 1: full snapshot of both partitions.
	for p := 0; p < 2; p++ {
		if err := SaveEpochPartition(s, "job", 1, 0, p, []byte(fmt.Sprintf("e1p%d", p))); err != nil {
			t.Fatal(err)
		}
	}
	if err := Commit(s, "job", CommitRecord{Epoch: 1, Superstep: 0, Parts: map[int]uint64{0: 1, 1: 1}}); err != nil {
		t.Fatal(err)
	}
	// Epoch 2: only partition 1 changed; partition 0 still points at
	// epoch 1's blob.
	if err := SaveEpochPartition(s, "job", 2, 1, 1, []byte("e2p1")); err != nil {
		t.Fatal(err)
	}
	if err := Commit(s, "job", CommitRecord{Epoch: 2, Superstep: 1, Parts: map[int]uint64{0: 1, 1: 2}}); err != nil {
		t.Fatal(err)
	}
	rec, blobs, ok, err := LoadCommitted(s, "job")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if rec.Superstep != 1 || string(blobs[0]) != "e1p0" || string(blobs[1]) != "e2p1" {
		t.Fatalf("stitched load = %+v %q %q", rec, blobs[0], blobs[1])
	}
}

func TestDiscardEpochParts(t *testing.T) {
	s := NewMemoryStore()
	if err := SaveEpochPartition(s, "job", 1, 0, 0, []byte("p0")); err != nil {
		t.Fatal(err)
	}
	DiscardEpochParts(s, "job", 1, []int{0})
	if _, _, ok, _ := s.Load(epochPartKey("job", 1, 0)); ok {
		t.Fatal("discarded blob still present")
	}
	// Stores without Delete are tolerated (best-effort GC).
	DiscardEpochParts(nopStore{}, "job", 1, []int{0})
}

type nopStore struct{}

func (nopStore) Save(string, int, []byte) error         { return nil }
func (nopStore) Load(string) ([]byte, int, bool, error) { return nil, 0, false, nil }
func (nopStore) BytesWritten() int64                    { return 0 }
func (nopStore) Saves() int                             { return 0 }

// sliceSnap is a PartitionSnapshot over fixed per-partition payloads.
type sliceSnap [][]byte

func (s sliceSnap) NumPartitions() int { return len(s) }

func (s sliceSnap) SnapshotPartition(p int, buf *bytes.Buffer) error {
	if s[p] == nil {
		return errors.New("boom")
	}
	_, err := buf.Write(s[p])
	return err
}

func TestEncodePartitionsParallel(t *testing.T) {
	snap := sliceSnap{[]byte("a"), []byte("bb"), []byte("ccc"), []byte("dddd")}
	var mu sync.Mutex
	got := map[int]string{}
	err := EncodePartitions(snap, []int{0, 1, 2, 3}, 4, func(p int, data []byte) error {
		mu.Lock()
		got[p] = string(data)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for p, want := range []string{"a", "bb", "ccc", "dddd"} {
		if got[p] != want {
			t.Fatalf("partition %d = %q", p, got[p])
		}
	}
}

func TestEncodePartitionsPropagatesError(t *testing.T) {
	snap := sliceSnap{[]byte("a"), nil, []byte("c")}
	err := EncodePartitions(snap, []int{0, 1, 2}, 2, func(int, []byte) error { return nil })
	if err == nil {
		t.Fatal("encode error swallowed")
	}
}

// Regression test for a cancellation (deepvet) finding: the work queue
// used to be unbuffered, so the enqueue loop depended on worker
// liveness to complete. It is now buffered to the full work list —
// a failing partition must neither reach save nor stop the remaining
// partitions from draining, even with a single worker.
func TestEncodePartitionsDrainsPastFailures(t *testing.T) {
	snap := sliceSnap{[]byte("a"), nil, []byte("c"), []byte("d")}
	var mu sync.Mutex
	saved := map[int]bool{}
	err := EncodePartitions(snap, []int{0, 1, 2, 3}, 1, func(p int, _ []byte) error {
		mu.Lock()
		saved[p] = true
		mu.Unlock()
		return nil
	})
	if err == nil {
		t.Fatal("encode error swallowed")
	}
	if saved[1] {
		t.Fatal("save called for the partition whose encoding failed")
	}
	for _, p := range []int{0, 2, 3} {
		if !saved[p] {
			t.Fatalf("partition %d not drained after the failure", p)
		}
	}
}

func TestRestorePartitionsDrainsPastFailures(t *testing.T) {
	blobs := map[int][]byte{0: []byte("a"), 1: []byte("b"), 2: []byte("c")}
	var mu sync.Mutex
	restored := map[int]bool{}
	err := RestorePartitions(blobs, 1, func(p int, _ []byte) error {
		if p == 1 {
			return errors.New("boom")
		}
		mu.Lock()
		restored[p] = true
		mu.Unlock()
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("restore error = %v, want boom", err)
	}
	if !restored[0] || !restored[2] {
		t.Fatalf("healthy partitions not restored after the failure: %v", restored)
	}
}

func TestAsyncWriterCommitsInBackground(t *testing.T) {
	s := NewMemoryStore()
	w := NewAsyncWriter(s, "job", AsyncOptions{Parallelism: 2})
	if err := w.Submit(0, sliceSnap{[]byte("s0p0"), []byte("s0p1")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Submit(1, sliceSnap{[]byte("s1p0"), []byte("s1p1")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	rec, ok := w.LastCommitted()
	if !ok || rec.Superstep != 1 {
		t.Fatalf("last committed = %+v ok=%v", rec, ok)
	}
	got, blobs, ok, err := LoadCommitted(s, "job")
	if err != nil || !ok || got.Superstep != 1 {
		t.Fatalf("load: %+v ok=%v err=%v", got, ok, err)
	}
	if string(blobs[0]) != "s1p0" || string(blobs[1]) != "s1p1" {
		t.Fatalf("blobs = %q %q", blobs[0], blobs[1])
	}
	if st := w.Stats(); st.Commits != 2 || st.Discarded != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAsyncWriterCompressedRoundTrip(t *testing.T) {
	s := NewMemoryStore()
	w := NewAsyncWriter(s, "job", AsyncOptions{Parallelism: 2, Compress: true})
	payload := bytes.Repeat([]byte("optiflow "), 500)
	if err := w.Submit(0, sliceSnap{payload, payload}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	_, blobs, ok, err := LoadCommitted(s, "job")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(blobs[0], payload) || !bytes.Equal(blobs[1], payload) {
		t.Fatal("compressed round trip mismatch")
	}
	if s.BytesWritten() > int64(2*len(payload)) {
		t.Fatalf("stored %d bytes for %d raw — compression ineffective", s.BytesWritten(), 2*len(payload))
	}
}

func TestAsyncWriterIncrementalSubmissions(t *testing.T) {
	s := NewMemoryStore()
	w := NewAsyncWriter(s, "job", AsyncOptions{})
	if err := w.Submit(0, sliceSnap{[]byte("s0p0"), []byte("s0p1")}, nil); err != nil {
		t.Fatal(err)
	}
	// Only partition 1 changed since.
	if err := w.Submit(1, sliceSnap{[]byte("XXX"), []byte("s1p1")}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	_, blobs, ok, err := LoadCommitted(s, "job")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if string(blobs[0]) != "s0p0" || string(blobs[1]) != "s1p1" {
		t.Fatalf("stitched blobs = %q %q", blobs[0], blobs[1])
	}
}

func TestAsyncWriterGCsSupersededBlobs(t *testing.T) {
	s := NewMemoryStore()
	w := NewAsyncWriter(s, "job", AsyncOptions{})
	if err := w.Submit(0, sliceSnap{[]byte("a")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Submit(1, sliceSnap{[]byte("b")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := s.Load(epochPartKey("job", 1, 0)); ok {
		t.Fatal("superseded epoch-1 blob not collected")
	}
	if _, _, ok, _ := s.Load(epochPartKey("job", 2, 0)); !ok {
		t.Fatal("live epoch-2 blob collected")
	}
}

func TestAsyncWriterErrorIsSticky(t *testing.T) {
	s := NewMemoryStore()
	w := NewAsyncWriter(s, "job", AsyncOptions{})
	if err := w.Submit(0, sliceSnap{nil}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Drain(); err == nil {
		t.Fatal("encode failure not reported by Drain")
	}
	if err := w.Submit(1, sliceSnap{[]byte("ok")}, nil); err == nil {
		t.Fatal("Submit after failure should report the sticky error")
	}
	if _, _, ok, _ := LoadCommitted(s, "job"); ok {
		t.Fatal("failed epoch committed")
	}
}

func TestAsyncWriterCancelPendingKeepsRestoreTarget(t *testing.T) {
	s := NewMemoryStore()
	w := NewAsyncWriter(s, "job", AsyncOptions{QueueDepth: 8})
	// Stall the drainer on a slow first submission so later ones queue.
	release := make(chan struct{})
	slow := gateSnap{data: []byte("s0"), gate: release}
	if err := w.Submit(0, slow, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Submit(1, sliceSnap{[]byte("s1")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Submit(2, sliceSnap{[]byte("s2")}, nil); err != nil {
		t.Fatal(err)
	}
	// Epoch 1 is mid-write: the two queued epochs can be dropped — the
	// in-flight one will commit and serve as the restore target.
	if dropped := w.CancelPending(); dropped != 2 {
		t.Fatalf("dropped = %d", dropped)
	}
	close(release)
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	rec, _, ok, err := LoadCommitted(s, "job")
	if err != nil || !ok || rec.Superstep != 0 {
		t.Fatalf("restore target = %+v ok=%v err=%v", rec, ok, err)
	}
	if st := w.Stats(); st.Commits != 1 || st.Discarded != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAsyncWriterCancelKeepsOldestWhenNothingCommitted(t *testing.T) {
	s := NewMemoryStore()
	w := NewAsyncWriter(s, "job", AsyncOptions{QueueDepth: 8})
	w.mu.Lock()
	// Simulate submissions queued before the drainer picked anything up
	// (nothing committed, nothing being written).
	w.queue = []*pendingEpoch{
		{epoch: 1, superstep: 0, snap: sliceSnap{[]byte("s0")}},
		{epoch: 2, superstep: 1, snap: sliceSnap{[]byte("s1")}},
	}
	w.inflight = 2
	w.epoch = 2
	w.mu.Unlock()
	if dropped := w.CancelPending(); dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
	w.mu.Lock()
	w.draining = true
	w.mu.Unlock()
	go w.drain()
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	rec, _, ok, err := LoadCommitted(s, "job")
	if err != nil || !ok || rec.Superstep != 0 {
		t.Fatalf("oldest submission not kept: %+v ok=%v err=%v", rec, ok, err)
	}
}

// gateSnap blocks the first encode until gate closes, keeping an epoch
// "mid-write" for as long as the test needs.
type gateSnap struct {
	data []byte
	gate chan struct{}
}

func (g gateSnap) NumPartitions() int { return 1 }

func (g gateSnap) SnapshotPartition(p int, buf *bytes.Buffer) error {
	<-g.gate
	_, err := buf.Write(g.data)
	return err
}
