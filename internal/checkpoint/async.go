package checkpoint

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"optiflow/internal/clock"
)

// PartitionSnapshot is a consistent, immutable capture of partitioned
// iteration state. Captures are cheap to take (copy-on-write views, see
// state.Store.SnapshotShared) and safe to encode from multiple
// goroutines concurrently while the live state advances.
type PartitionSnapshot interface {
	// NumPartitions returns the partition count.
	NumPartitions() int
	// SnapshotPartition serialises partition p into buf. It must be
	// safe to call concurrently for distinct partitions.
	SnapshotPartition(p int, buf *bytes.Buffer) error
}

// bufPool recycles the per-partition encode buffers across checkpoints.
var bufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// EncodePartitions encodes the listed partitions of snap on up to par
// goroutines, each into a pooled buffer, handing every encoded blob to
// save. save must be safe for concurrent calls (the Store
// implementations are); it is not called for a partition whose encoding
// failed. The first error wins.
func EncodePartitions(snap PartitionSnapshot, parts []int, par int, save func(part int, data []byte) error) error {
	if len(parts) == 0 {
		return nil
	}
	if par < 1 {
		par = 1
	}
	if par > len(parts) {
		par = len(parts)
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
	// Buffered to the full work list so the producer loop below can
	// never block: even if every worker exited early, enqueue + close
	// would still complete and the function could report the error.
	work := make(chan int, len(parts))
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				buf := bufPool.Get().(*bytes.Buffer)
				buf.Reset()
				if err := snap.SnapshotPartition(p, buf); err != nil {
					fail(fmt.Errorf("checkpoint: encoding partition %d: %v", p, err))
					bufPool.Put(buf)
					continue
				}
				if err := save(p, buf.Bytes()); err != nil {
					fail(err)
				}
				bufPool.Put(buf)
			}
		}()
	}
	for _, p := range parts {
		work <- p
	}
	close(work)
	wg.Wait()
	return firstErr
}

// RestorePartitions replays one blob per partition on up to par
// goroutines. restore must be safe for concurrent calls on distinct
// partitions (partitioned state is). The first error wins.
func RestorePartitions(blobs map[int][]byte, par int, restore func(part int, data []byte) error) error {
	if len(blobs) == 0 {
		return nil
	}
	if par < 1 {
		par = 1
	}
	if par > len(blobs) {
		par = len(blobs)
	}
	parts := make([]int, 0, len(blobs))
	for p := range blobs {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	// Buffered like EncodePartitions' work queue: the producer must not
	// depend on worker liveness to make progress.
	work := make(chan int, len(parts))
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				if err := restore(p, blobs[p]); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for _, p := range parts {
		work <- p
	}
	close(work)
	wg.Wait()
	return firstErr
}

// AsyncOptions configures an AsyncWriter.
type AsyncOptions struct {
	// Parallelism is the number of encoder goroutines per checkpoint
	// (default 1).
	Parallelism int
	// Compress gzip-compresses each partition blob on the encoder
	// goroutines before it hits the store. Pass the *uncompressed*
	// store here — wrapping it in Compressed would double-compress.
	Compress bool
	// QueueDepth bounds the number of in-flight checkpoints; Submit
	// blocks once the bound is reached (backpressure instead of
	// unbounded snapshot buffering). Default 2.
	QueueDepth int
}

// AsyncStats reports what an AsyncWriter did.
type AsyncStats struct {
	// Commits is the number of committed epochs.
	Commits int
	// Discarded is the number of submissions dropped by CancelPending.
	Discarded int
	// CommitTime is the summed capture-to-commit latency of all
	// committed epochs — the end-to-end checkpoint cost that the
	// iteration barrier no longer pays.
	CommitTime time.Duration
}

// AsyncWriter persists checkpoint epochs in the background. Submit is
// called at the superstep barrier with a cheap consistent capture and
// returns immediately; a drainer goroutine (started on demand, exits
// when the queue empties) encodes the capture's partitions in parallel
// into pooled buffers, saves them under the epoch's keys and publishes
// the commit marker. The commit protocol (see epoch.go) guarantees a
// failure mid-write leaves the previous committed epoch intact.
//
// Fence protocol for the caller (iterate.Loop / the recovery policy):
// on failure or termination, call CancelPending to drop queued-but-
// unstarted epochs, then Drain to await the one being written; after
// Drain returns, LoadCommitted observes the newest committed epoch and
// nothing torn.
type AsyncWriter struct {
	store Store
	job   string
	opts  AsyncOptions

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*pendingEpoch
	draining bool // drainer goroutine alive
	writing  bool // drainer is mid-write (not cancelable)
	inflight int  // queued + being written
	err      error
	epoch    uint64 // last assigned epoch number
	last     CommitRecord
	hasLast  bool
	stats    AsyncStats
}

type pendingEpoch struct {
	epoch     uint64
	superstep int
	snap      PartitionSnapshot
	dirty     []int // nil = full snapshot of every partition
	submitted time.Time
}

// NewAsyncWriter returns a writer persisting epochs of job into store.
//
// Two scoping rules keep shared stores safe. First, a disk-backed store
// only has the job's own crash-abandoned temp files swept (TempSweeper)
// — never a concurrent job's in-flight writes. Second, if the store
// already holds a committed epoch of this job (a previous writer
// incarnation — e.g. a coordinator restarted after a crash), epoch
// numbering resumes above it and the incremental baseline is seeded
// from the committed record; a fresh writer restarting at epoch 1 would
// re-use key names the committed record still references, and its
// failed-write discard or superseded-blob GC would reclaim those live
// blobs, leaving the commit record pointing at nothing.
func NewAsyncWriter(store Store, job string, opts AsyncOptions) *AsyncWriter {
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	if opts.QueueDepth < 1 {
		opts.QueueDepth = 2
	}
	w := &AsyncWriter{store: store, job: job, opts: opts}
	w.cond = sync.NewCond(&w.mu)
	if ts, ok := store.(TempSweeper); ok {
		ts.SweepTemp(job)
	}
	if rec, ok, err := LoadCommitRecord(store, job); err == nil && ok {
		w.epoch = rec.Epoch
		w.last = rec
		w.hasLast = true
	}
	return w
}

// Submit enqueues one checkpoint: snap captured after superstep, with
// dirty listing the partitions changed since the previous submission
// (nil for a full snapshot). Submit blocks only when QueueDepth epochs
// are already in flight. Errors are sticky: once a background write
// fails, Submit and Drain report it.
func (w *AsyncWriter) Submit(superstep int, snap PartitionSnapshot, dirty []int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	for w.inflight >= w.opts.QueueDepth {
		w.cond.Wait()
		if w.err != nil {
			return w.err
		}
	}
	w.epoch++
	w.queue = append(w.queue, &pendingEpoch{
		epoch:     w.epoch,
		superstep: superstep,
		snap:      snap,
		dirty:     dirty,
		submitted: clock.Now(),
	})
	w.inflight++
	if !w.draining {
		w.draining = true
		go w.drain()
	}
	return nil
}

func (w *AsyncWriter) drain() {
	w.mu.Lock()
	for {
		if len(w.queue) == 0 || w.err != nil {
			w.queue = nil
			w.draining = false
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		}
		p := w.queue[0]
		w.queue = w.queue[1:]
		w.writing = true
		w.mu.Unlock()

		err := w.write(p)

		w.mu.Lock()
		w.writing = false
		w.inflight--
		if err != nil && w.err == nil {
			w.err = err
			// Submissions behind a failed write are dropped: their
			// base epochs may be incomplete.
			w.inflight -= len(w.queue)
			w.queue = nil
		}
		w.cond.Broadcast()
	}
}

// write persists one epoch: parallel encode + save of every (dirty)
// partition, then the atomic commit, then GC of superseded blobs.
func (w *AsyncWriter) write(p *pendingEpoch) error {
	parts := p.dirty
	if parts == nil {
		parts = make([]int, p.snap.NumPartitions())
		for i := range parts {
			parts[i] = i
		}
	}
	err := EncodePartitions(p.snap, parts, w.opts.Parallelism, func(part int, data []byte) error {
		if w.opts.Compress {
			packed, err := compress(data)
			if err != nil {
				return err
			}
			data = packed
		}
		return SaveEpochPartition(w.store, w.job, p.epoch, p.superstep, part, data)
	})
	if err != nil {
		DiscardEpochParts(w.store, w.job, p.epoch, parts)
		return err
	}

	w.mu.Lock()
	prev := w.last
	hasPrev := w.hasLast
	w.mu.Unlock()

	rec := CommitRecord{
		Epoch:      p.epoch,
		Superstep:  p.superstep,
		Parts:      make(map[int]uint64, p.snap.NumPartitions()),
		Compressed: w.opts.Compress,
	}
	if hasPrev {
		for part, e := range prev.Parts {
			rec.Parts[part] = e
		}
	}
	for _, part := range parts {
		rec.Parts[part] = p.epoch
	}
	if err := Commit(w.store, w.job, rec); err != nil {
		DiscardEpochParts(w.store, w.job, p.epoch, parts)
		return err
	}

	// GC blobs superseded by this commit.
	if hasPrev {
		for part, e := range prev.Parts {
			if rec.Parts[part] != e {
				DiscardEpochParts(w.store, w.job, e, []int{part})
			}
		}
	}

	w.mu.Lock()
	w.last = rec
	w.hasLast = true
	w.stats.Commits++
	w.stats.CommitTime += clock.Since(p.submitted)
	w.mu.Unlock()
	return nil
}

// CancelPending drops every queued-but-unstarted submission and reports
// how many were discarded. The epoch currently being written (if any)
// completes normally — await it with Drain. If nothing has ever been
// committed and nothing is being written, the oldest submission is kept
// so a restore target always exists.
func (w *AsyncWriter) CancelPending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	keep := 0
	if !w.hasLast && !w.writing && len(w.queue) > 0 {
		keep = 1
	}
	dropped := len(w.queue) - keep
	if dropped <= 0 {
		return 0
	}
	w.queue = w.queue[:keep]
	w.inflight -= dropped
	w.stats.Discarded += dropped
	w.cond.Broadcast()
	return dropped
}

// Drain blocks until every in-flight submission has committed (or
// failed) and returns the sticky error, if any. After Drain, a
// LoadCommitted on the store observes the newest committed epoch.
func (w *AsyncWriter) Drain() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.inflight > 0 && w.err == nil {
		w.cond.Wait()
	}
	return w.err
}

// Err returns the sticky background error, if any.
func (w *AsyncWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// LastCommitted returns the newest committed epoch's record. Call only
// after Drain for fence-correct reads.
func (w *AsyncWriter) LastCommitted() (CommitRecord, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.last, w.hasLast
}

// Stats reports commit counts and latency.
func (w *AsyncWriter) Stats() AsyncStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// QueueDepth returns the number of in-flight submissions (diagnostic).
func (w *AsyncWriter) QueueDepth() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.inflight
}
