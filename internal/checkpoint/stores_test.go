package checkpoint

import (
	"fmt"
	"testing"
)

func testPartStore(t *testing.T, s PartStore) {
	t.Helper()
	if got, err := s.LoadPartitions("job"); err != nil || len(got) != 0 {
		t.Fatalf("empty: %v %v", got, err)
	}
	for p := 0; p < 3; p++ {
		if err := s.SavePartition("job", p, 0, []byte(fmt.Sprintf("part-%d-v0", p))); err != nil {
			t.Fatal(err)
		}
	}
	// Replace one partition.
	if err := s.SavePartition("job", 1, 4, []byte("part-1-v4")); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadPartitions("job")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("loaded %d partitions", len(got))
	}
	if string(got[0]) != "part-0-v0" || string(got[1]) != "part-1-v4" || string(got[2]) != "part-2-v0" {
		t.Fatalf("blobs: %q %q %q", got[0], got[1], got[2])
	}
	// Other jobs are isolated.
	if err := s.SavePartition("other", 0, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.LoadPartitions("job")
	if len(got) != 3 {
		t.Fatal("jobs collided")
	}
	if s.Saves() != 5 {
		t.Fatalf("saves = %d", s.Saves())
	}
}

func TestMemoryPartStore(t *testing.T) {
	testPartStore(t, NewMemoryStore())
}

func TestDiskPartStore(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testPartStore(t, s)
}

func testLogStore(t *testing.T, s LogStore) {
	t.Helper()
	if _, _, _, ok, err := s.LoadChain("job"); ok || err != nil {
		t.Fatalf("empty chain: %v %v", ok, err)
	}
	// Appending without a base must fail.
	if err := s.AppendDelta("job", 0, []byte("d0")); err == nil {
		t.Fatal("delta without base accepted")
	}
	if err := s.SaveBase("job", -1, []byte("base-a")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.AppendDelta("job", i, []byte(fmt.Sprintf("d%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	base, deltas, sup, ok, err := s.LoadChain("job")
	if err != nil || !ok || sup != 2 {
		t.Fatalf("chain: %v %v %v", sup, ok, err)
	}
	if string(base) != "base-a" || len(deltas) != 3 || string(deltas[2]) != "d2" {
		t.Fatalf("chain content: %q %v", base, deltas)
	}
	if s.DeltaCount("job") != 3 {
		t.Fatalf("delta count = %d", s.DeltaCount("job"))
	}
	// Compaction replaces the chain.
	if err := s.SaveBase("job", 5, []byte("base-b")); err != nil {
		t.Fatal(err)
	}
	base, deltas, sup, ok, err = s.LoadChain("job")
	if err != nil || !ok || sup != 5 || string(base) != "base-b" || len(deltas) != 0 {
		t.Fatalf("after compaction: %q %v %d %v %v", base, deltas, sup, ok, err)
	}
	if s.DeltaCount("job") != 0 {
		t.Fatal("compaction kept deltas")
	}
	if s.BytesWritten() == 0 || s.Saves() != 5 {
		t.Fatalf("accounting: %d bytes, %d saves", s.BytesWritten(), s.Saves())
	}
}

func TestMemoryLogStore(t *testing.T) {
	testLogStore(t, NewMemoryLogStore())
}

func TestDiskLogStore(t *testing.T) {
	s, err := NewDiskLogStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testLogStore(t, s)
}

func TestMemoryLogStoreCopiesData(t *testing.T) {
	s := NewMemoryLogStore()
	buf := []byte("mutable")
	if err := s.SaveBase("job", 0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	base, _, _, _, _ := s.LoadChain("job")
	if string(base) != "mutable" {
		t.Fatal("log store aliased caller buffer")
	}
}

// Regression for the old prefix derivation
// (prefix[:strings.LastIndex(prefix, "0")]), which broke for job names
// containing digits: partition keys must be grouped by an explicit
// prefix that survives digits and '#' in the name.
func testPartPrefixHostileJobNames(t *testing.T, s PartStore) {
	t.Helper()
	jobs := []string{"job0", "job01", "pagerank#v2", "pagerank#v20"}
	for i, job := range jobs {
		for p := 0; p < 12; p += 11 { // partitions 0 and 11: multi-digit suffixes too
			blob := fmt.Sprintf("%s/part-%d", job, p)
			if err := s.SavePartition(job, p, i, []byte(blob)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, job := range jobs {
		got, err := s.LoadPartitions(job)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("job %q: loaded %d partitions, want 2", job, len(got))
		}
		for _, p := range []int{0, 11} {
			if want := fmt.Sprintf("%s/part-%d", job, p); string(got[p]) != want {
				t.Fatalf("job %q partition %d = %q, want %q", job, p, got[p], want)
			}
		}
	}
}

func TestMemoryPartStoreHostileJobNames(t *testing.T) {
	testPartPrefixHostileJobNames(t, NewMemoryStore())
}

func TestDiskPartStoreHostileJobNames(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testPartPrefixHostileJobNames(t, s)
}

func TestPartPrefix(t *testing.T) {
	if got := partPrefix("job0#v1"); got != "job0#v1#part-" {
		t.Fatalf("partPrefix = %q", got)
	}
	if got := partKey("job0#v1", 10); got != "job0#v1#part-10" {
		t.Fatalf("partKey = %q", got)
	}
}
