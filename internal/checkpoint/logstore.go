package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// LogStore persists a snapshot chain for delta-log checkpointing: one
// base snapshot plus an ordered list of deltas. Replaying the deltas
// onto the base reproduces the state at the last checkpoint.
type LogStore interface {
	// SaveBase replaces the chain with a fresh base snapshot (taken
	// after the given superstep) and discards all deltas (compaction).
	SaveBase(job string, superstep int, data []byte) error
	// AppendDelta appends one delta taken after the given superstep.
	AppendDelta(job string, superstep int, data []byte) error
	// LoadChain returns the base, the ordered deltas, and the superstep
	// of the newest element. ok is false if no base exists.
	LoadChain(job string) (base []byte, deltas [][]byte, superstep int, ok bool, err error)
	// DeltaCount returns the current chain length (deltas only).
	DeltaCount(job string) int
	// BytesWritten returns the cumulative snapshot volume.
	BytesWritten() int64
	// Saves returns the number of base + delta writes.
	Saves() int
}

// MemoryLogStore keeps snapshot chains in process memory.
type MemoryLogStore struct {
	mu     sync.Mutex
	chains map[string]*memChain
	bytes  int64
	saves  int
}

type memChain struct {
	base      []byte
	deltas    [][]byte
	superstep int
}

// NewMemoryLogStore returns an empty in-memory log store.
func NewMemoryLogStore() *MemoryLogStore {
	return &MemoryLogStore{chains: make(map[string]*memChain)}
}

// SaveBase implements LogStore.
func (m *MemoryLogStore) SaveBase(job string, superstep int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.chains[job] = &memChain{base: append([]byte(nil), data...), superstep: superstep}
	m.bytes += int64(len(data))
	m.saves++
	return nil
}

// AppendDelta implements LogStore.
func (m *MemoryLogStore) AppendDelta(job string, superstep int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.chains[job]
	if !ok {
		return fmt.Errorf("checkpoint: no base snapshot for %q", job)
	}
	c.deltas = append(c.deltas, append([]byte(nil), data...))
	c.superstep = superstep
	m.bytes += int64(len(data))
	m.saves++
	return nil
}

// LoadChain implements LogStore.
func (m *MemoryLogStore) LoadChain(job string) ([]byte, [][]byte, int, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.chains[job]
	if !ok {
		return nil, nil, 0, false, nil
	}
	deltas := make([][]byte, len(c.deltas))
	for i, d := range c.deltas {
		deltas[i] = append([]byte(nil), d...)
	}
	return append([]byte(nil), c.base...), deltas, c.superstep, true, nil
}

// DeltaCount implements LogStore.
func (m *MemoryLogStore) DeltaCount(job string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.chains[job]; ok {
		return len(c.deltas)
	}
	return 0
}

// BytesWritten implements LogStore.
func (m *MemoryLogStore) BytesWritten() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// Saves implements LogStore.
func (m *MemoryLogStore) Saves() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.saves
}

// DiskLogStore persists snapshot chains as files: job.base plus
// job.delta-N, all synced.
type DiskLogStore struct {
	dir   string
	mu    sync.Mutex
	bytes int64
	saves int
	super map[string]int
	count map[string]int
}

// NewDiskLogStore creates (if needed) and uses dir.
func NewDiskLogStore(dir string) (*DiskLogStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %v", dir, err)
	}
	return &DiskLogStore{dir: dir, super: make(map[string]int), count: make(map[string]int)}, nil
}

func (d *DiskLogStore) write(path string, data []byte) error {
	tmp, err := os.CreateTemp(d.dir, "log-tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// SaveBase implements LogStore.
func (d *DiskLogStore) SaveBase(job string, superstep int, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Compaction: drop the old chain.
	for i := 0; i < d.count[job]; i++ {
		os.Remove(filepath.Join(d.dir, fmt.Sprintf("%s.delta-%d", job, i)))
	}
	d.count[job] = 0
	if err := d.write(filepath.Join(d.dir, job+".base"), data); err != nil {
		return fmt.Errorf("checkpoint: writing base of %q: %v", job, err)
	}
	d.super[job] = superstep
	d.bytes += int64(len(data))
	d.saves++
	return nil
}

// AppendDelta implements LogStore.
func (d *DiskLogStore) AppendDelta(job string, superstep int, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := os.Stat(filepath.Join(d.dir, job+".base")); err != nil {
		return fmt.Errorf("checkpoint: no base snapshot for %q", job)
	}
	n := d.count[job]
	if err := d.write(filepath.Join(d.dir, fmt.Sprintf("%s.delta-%d", job, n)), data); err != nil {
		return fmt.Errorf("checkpoint: writing delta %d of %q: %v", n, job, err)
	}
	d.count[job] = n + 1
	d.super[job] = superstep
	d.bytes += int64(len(data))
	d.saves++
	return nil
}

// LoadChain implements LogStore.
func (d *DiskLogStore) LoadChain(job string) ([]byte, [][]byte, int, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	base, err := os.ReadFile(filepath.Join(d.dir, job+".base"))
	if os.IsNotExist(err) {
		return nil, nil, 0, false, nil
	}
	if err != nil {
		return nil, nil, 0, false, fmt.Errorf("checkpoint: reading base of %q: %v", job, err)
	}
	deltas := make([][]byte, 0, d.count[job])
	for i := 0; i < d.count[job]; i++ {
		data, err := os.ReadFile(filepath.Join(d.dir, fmt.Sprintf("%s.delta-%d", job, i)))
		if err != nil {
			return nil, nil, 0, false, fmt.Errorf("checkpoint: reading delta %d of %q: %v", i, job, err)
		}
		deltas = append(deltas, data)
	}
	return base, deltas, d.super[job], true, nil
}

// DeltaCount implements LogStore.
func (d *DiskLogStore) DeltaCount(job string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count[job]
}

// BytesWritten implements LogStore.
func (d *DiskLogStore) BytesWritten() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// Saves implements LogStore.
func (d *DiskLogStore) Saves() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.saves
}
