package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func testStore(t *testing.T, s Store) {
	t.Helper()
	if _, _, ok, err := s.Load("job"); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	if err := s.Save("job", 3, []byte("snapshot-a")); err != nil {
		t.Fatal(err)
	}
	data, sup, ok, err := s.Load("job")
	if err != nil || !ok || sup != 3 || !bytes.Equal(data, []byte("snapshot-a")) {
		t.Fatalf("load: %q %d %v %v", data, sup, ok, err)
	}
	// Newer snapshot replaces the old one.
	if err := s.Save("job", 7, []byte("snapshot-b-longer")); err != nil {
		t.Fatal(err)
	}
	data, sup, ok, err = s.Load("job")
	if err != nil || !ok || sup != 7 || string(data) != "snapshot-b-longer" {
		t.Fatalf("load after replace: %q %d %v %v", data, sup, ok, err)
	}
	// Accounting covers all writes.
	if got := s.BytesWritten(); got != int64(len("snapshot-a")+len("snapshot-b-longer")) {
		t.Fatalf("bytes = %d", got)
	}
	if s.Saves() != 2 {
		t.Fatalf("saves = %d", s.Saves())
	}
	// Independent jobs do not collide.
	if err := s.Save("other", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	data, _, _, _ = s.Load("job")
	if string(data) != "snapshot-b-longer" {
		t.Fatal("jobs collided")
	}
}

func TestMemoryStore(t *testing.T) {
	testStore(t, NewMemoryStore())
}

func TestDiskStore(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, s)
}

func TestMemoryStoreCopiesData(t *testing.T) {
	s := NewMemoryStore()
	buf := []byte("mutable")
	if err := s.Save("job", 0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	data, _, _, _ := s.Load("job")
	if string(data) != "mutable" {
		t.Fatal("store aliased caller buffer")
	}
	data[0] = 'Y'
	again, _, _, _ := s.Load("job")
	if string(again) != "mutable" {
		t.Fatal("load aliased internal buffer")
	}
}

func TestDiskStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("job", 4, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	// A new store over the same directory sees the snapshot bytes AND
	// the superstep it was taken after — the file header makes the
	// metadata durable, not process-local.
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, sup, ok, err := s2.Load("job")
	if err != nil || !ok || string(data) != "persisted" {
		t.Fatalf("reopen load: %q %v %v", data, ok, err)
	}
	if sup != 4 {
		t.Fatalf("reopen superstep = %d, want 4", sup)
	}
}

func TestCompressedStoreRoundTrip(t *testing.T) {
	s := Compressed(NewMemoryStore())
	// Highly repetitive payload: compression must bite.
	payload := bytes.Repeat([]byte("label=42;"), 4096)
	if err := s.Save("job", 3, payload); err != nil {
		t.Fatal(err)
	}
	data, sup, ok, err := s.Load("job")
	if err != nil || !ok || sup != 3 {
		t.Fatalf("load: %v %v %v", sup, ok, err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("roundtrip corrupted the snapshot")
	}
	if s.BytesWritten() >= int64(len(payload))/4 {
		t.Fatalf("stored %d bytes for a %d-byte repetitive payload", s.BytesWritten(), len(payload))
	}
	if RawBytes(s) != int64(len(payload)) {
		t.Fatalf("raw bytes = %d", RawBytes(s))
	}
	if RawBytes(NewMemoryStore()) != 0 {
		t.Fatal("RawBytes on a plain store should be 0")
	}
}

func TestCompressedStoreEmptyAndMissing(t *testing.T) {
	s := Compressed(NewMemoryStore())
	if _, _, ok, err := s.Load("nothing"); ok || err != nil {
		t.Fatalf("missing: %v %v", ok, err)
	}
	if err := s.Save("job", 0, nil); err != nil {
		t.Fatal(err)
	}
	data, _, ok, err := s.Load("job")
	if err != nil || !ok || len(data) != 0 {
		t.Fatalf("empty roundtrip: %q %v %v", data, ok, err)
	}
}

// Regression for the in-place-write bug: a crash mid-write used to
// leave a torn blob that Load happily returned. With atomic temp-file +
// rename Saves and a checksummed header, reopening the directory after
// a simulated partial write must surface an error — never bad data.
func TestDiskStoreRejectsTornWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("job", 6, bytes.Repeat([]byte("state"), 100)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that tore the published file (e.g. the disk died
	// mid-sector): truncate the payload.
	path := filepath.Join(dir, "job.ckpt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s2.Load("job"); err == nil {
		t.Fatal("truncated snapshot loaded without error")
	}
	// Same for silent corruption: flip a payload byte, keep the length.
	flipped := append([]byte(nil), raw...)
	flipped[snapHeaderSize] ^= 0xff
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s2.Load("job"); err == nil {
		t.Fatal("corrupted snapshot loaded without error")
	}
	// And an abandoned temp file (crash before rename) is invisible to
	// Load and removed by the owning job's scoped sweep — which must not
	// touch another job's in-flight temp in the shared directory.
	if err := os.WriteFile(filepath.Join(dir, "job.tmp-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(dir, "otherjob.tmp-456")
	if err := os.WriteFile(other, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	s3, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s3.Load("job"); ok || err != nil {
		t.Fatalf("abandoned temp file visible: ok=%v err=%v", ok, err)
	}
	if err := s3.SweepTemp("job"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "job.tmp-123")); !os.IsNotExist(err) {
		t.Fatal("temp file not swept")
	}
	if _, err := os.Stat(other); err != nil {
		t.Fatal("scoped sweep removed another job's in-flight temp")
	}
}
