// Package checkpoint provides the stable-storage snapshot stores used
// by the pessimistic rollback-recovery baseline (§2.2): an in-memory
// store (checkpointing to a replicated peer) and an on-disk store
// (checkpointing to a distributed file system). Both report how many
// bytes they absorbed so experiment E6 can quantify the failure-free
// overhead that optimistic recovery avoids.
package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is stable storage for iteration snapshots. Save replaces any
// previous snapshot of the same job; Load returns the latest snapshot.
type Store interface {
	// Save persists the snapshot taken after the given superstep.
	Save(job string, superstep int, data []byte) error
	// Load returns the most recent snapshot and the superstep it was
	// taken after. ok is false if no snapshot exists.
	Load(job string) (data []byte, superstep int, ok bool, err error)
	// BytesWritten returns the cumulative snapshot volume, a proxy for
	// the checkpointing overhead.
	BytesWritten() int64
	// Saves returns how many snapshots were taken.
	Saves() int
}

// MemoryStore keeps snapshots in process memory.
type MemoryStore struct {
	mu    sync.Mutex
	snaps map[string]memSnap
	bytes int64
	saves int
}

type memSnap struct {
	data      []byte
	superstep int
}

// NewMemoryStore returns an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{snaps: make(map[string]memSnap)}
}

// Save implements Store.
func (m *MemoryStore) Save(job string, superstep int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := append([]byte(nil), data...)
	m.snaps[job] = memSnap{data: cp, superstep: superstep}
	m.bytes += int64(len(data))
	m.saves++
	return nil
}

// Load implements Store.
func (m *MemoryStore) Load(job string) ([]byte, int, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.snaps[job]
	if !ok {
		return nil, 0, false, nil
	}
	return append([]byte(nil), s.data...), s.superstep, true, nil
}

// BytesWritten implements Store.
func (m *MemoryStore) BytesWritten() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// Saves implements Store.
func (m *MemoryStore) Saves() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.saves
}

// DiskStore writes snapshots to files under a directory, syncing them
// to disk like a write to a distributed file system would.
type DiskStore struct {
	dir   string
	mu    sync.Mutex
	bytes int64
	saves int
	sup   map[string]int
}

// NewDiskStore creates (if needed) and uses dir for snapshot files.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %v", dir, err)
	}
	return &DiskStore{dir: dir, sup: make(map[string]int)}, nil
}

func (d *DiskStore) path(job string) string {
	return filepath.Join(d.dir, job+".ckpt")
}

// Save implements Store. The write is atomic (temp file + rename) and
// synced.
func (d *DiskStore) Save(job string, superstep int, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, job+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %v", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("checkpoint: writing snapshot: %v", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("checkpoint: syncing snapshot: %v", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: closing snapshot: %v", err)
	}
	if err := os.Rename(name, d.path(job)); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: publishing snapshot: %v", err)
	}
	d.bytes += int64(len(data))
	d.saves++
	d.sup[job] = superstep
	return nil
}

// Load implements Store.
func (d *DiskStore) Load(job string) ([]byte, int, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, err := os.ReadFile(d.path(job))
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("checkpoint: reading snapshot: %v", err)
	}
	return data, d.sup[job], true, nil
}

// BytesWritten implements Store.
func (d *DiskStore) BytesWritten() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// Saves implements Store.
func (d *DiskStore) Saves() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.saves
}
