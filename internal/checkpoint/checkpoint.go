// Package checkpoint provides the stable-storage snapshot stores used
// by the pessimistic rollback-recovery baseline (§2.2): an in-memory
// store (checkpointing to a replicated peer) and an on-disk store
// (checkpointing to a distributed file system). Both report how many
// bytes they absorbed so experiment E6 can quantify the failure-free
// overhead that optimistic recovery avoids.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store is stable storage for iteration snapshots. Save replaces any
// previous snapshot of the same job; Load returns the latest snapshot.
type Store interface {
	// Save persists the snapshot taken after the given superstep.
	Save(job string, superstep int, data []byte) error
	// Load returns the most recent snapshot and the superstep it was
	// taken after. ok is false if no snapshot exists.
	Load(job string) (data []byte, superstep int, ok bool, err error)
	// BytesWritten returns the cumulative snapshot volume, a proxy for
	// the checkpointing overhead.
	BytesWritten() int64
	// Saves returns how many snapshots were taken.
	Saves() int
}

// Deleter is implemented by stores that can drop a snapshot by key.
// The epoch layer uses it to garbage-collect superseded partition blobs
// and the blobs of discarded (never-committed) epochs; stores without
// it simply accumulate.
type Deleter interface {
	// Delete removes the snapshot stored under job, if any.
	Delete(job string) error
}

// MemoryStore keeps snapshots in process memory.
type MemoryStore struct {
	mu    sync.Mutex
	snaps map[string]memSnap
	bytes int64
	saves int
}

type memSnap struct {
	data      []byte
	superstep int
}

// NewMemoryStore returns an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{snaps: make(map[string]memSnap)}
}

// Save implements Store.
func (m *MemoryStore) Save(job string, superstep int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := append([]byte(nil), data...)
	m.snaps[job] = memSnap{data: cp, superstep: superstep}
	m.bytes += int64(len(data))
	m.saves++
	return nil
}

// Load implements Store.
func (m *MemoryStore) Load(job string) ([]byte, int, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.snaps[job]
	if !ok {
		return nil, 0, false, nil
	}
	return append([]byte(nil), s.data...), s.superstep, true, nil
}

// BytesWritten implements Store.
func (m *MemoryStore) BytesWritten() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// Saves implements Store.
func (m *MemoryStore) Saves() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.saves
}

// Delete implements Deleter.
func (m *MemoryStore) Delete(job string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.snaps, job)
	return nil
}

// DiskStore writes snapshots to files under a directory, syncing them
// to disk like a write to a distributed file system would.
//
// Each file carries a small self-describing header (magic, superstep,
// payload length, CRC-32) so that (a) the superstep a snapshot was
// taken after survives process restarts, and (b) a blob torn by a crash
// mid-write is detected on Load instead of silently restored.
type DiskStore struct {
	dir   string
	mu    sync.Mutex
	bytes int64
	saves int
}

// snapshot file header: magic | superstep | payload length | CRC-32.
const (
	snapMagic      = "OFCK"
	snapHeaderSize = 4 + 8 + 8 + 4
)

func encodeSnapHeader(superstep int, data []byte) []byte {
	h := make([]byte, snapHeaderSize)
	copy(h, snapMagic)
	binary.BigEndian.PutUint64(h[4:], uint64(int64(superstep)))
	binary.BigEndian.PutUint64(h[12:], uint64(len(data)))
	binary.BigEndian.PutUint32(h[20:], crc32.ChecksumIEEE(data))
	return h
}

// decodeSnapFile validates a snapshot file's header and checksum,
// returning the payload and the superstep it was taken after. Any
// mismatch — truncated header, short payload, bad CRC — reports a torn
// blob.
func decodeSnapFile(raw []byte) (data []byte, superstep int, err error) {
	if len(raw) < snapHeaderSize || string(raw[:4]) != snapMagic {
		return nil, 0, fmt.Errorf("torn snapshot: missing header")
	}
	superstep = int(int64(binary.BigEndian.Uint64(raw[4:])))
	n := binary.BigEndian.Uint64(raw[12:])
	sum := binary.BigEndian.Uint32(raw[20:])
	data = raw[snapHeaderSize:]
	if uint64(len(data)) != n {
		return nil, 0, fmt.Errorf("torn snapshot: %d payload bytes, header says %d", len(data), n)
	}
	if crc32.ChecksumIEEE(data) != sum {
		return nil, 0, fmt.Errorf("torn snapshot: checksum mismatch")
	}
	return data, superstep, nil
}

// NewDiskStore creates (if needed) and uses dir for snapshot files.
//
// It deliberately does NOT sweep abandoned temp files: a shared
// directory may hold another job's Save between CreateTemp and Rename,
// and an unscoped sweep (as this constructor used to do) deletes that
// in-flight temp out from under it, failing the other job's write.
// Owners clean up their own leftovers with SweepTemp.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %v", dir, err)
	}
	return &DiskStore{dir: dir}, nil
}

// TempSweeper is implemented by stores that keep crash-abandoned
// scratch files around and can sweep them per job. The key prefix
// passed to SweepTemp scopes the sweep to one job's keys: only its own
// leftovers are removed, never another job's in-flight writes.
type TempSweeper interface {
	SweepTemp(jobPrefix string) error
}

// SweepTemp removes temp files abandoned by a crash mid-Save, scoped to
// keys of the owning job: plain snapshots (`job.tmp-*`) and everything
// under the job's composite keys (`job#epoch-…`, `job#part-…`,
// `job#commit` — all `job#*.tmp-*`). Files of other jobs sharing the
// directory are left alone, including their live in-flight temps.
func (d *DiskStore) SweepTemp(jobPrefix string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: listing %s: %v", d.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.Contains(name, ".tmp-") {
			continue
		}
		if strings.HasPrefix(name, jobPrefix+"#") || strings.HasPrefix(name, jobPrefix+".tmp-") {
			os.Remove(filepath.Join(d.dir, name))
		}
	}
	return nil
}

func (d *DiskStore) path(job string) string {
	return filepath.Join(d.dir, job+".ckpt")
}

// Save implements Store. The write is atomic (temp file + rename) and
// synced; BytesWritten counts payload bytes only, so overhead reports
// stay comparable across stores.
func (d *DiskStore) Save(job string, superstep int, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, job+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %v", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(encodeSnapHeader(superstep, data)); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("checkpoint: writing snapshot header: %v", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("checkpoint: writing snapshot: %v", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("checkpoint: syncing snapshot: %v", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: closing snapshot: %v", err)
	}
	if err := os.Rename(name, d.path(job)); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: publishing snapshot: %v", err)
	}
	d.bytes += int64(len(data))
	d.saves++
	return nil
}

// Load implements Store. A torn blob (crash mid-write before the rename
// landed, or on-disk corruption) returns an error, never bad data.
func (d *DiskStore) Load(job string) ([]byte, int, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	raw, err := os.ReadFile(d.path(job))
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("checkpoint: reading snapshot: %v", err)
	}
	data, superstep, err := decodeSnapFile(raw)
	if err != nil {
		return nil, 0, false, fmt.Errorf("checkpoint: snapshot of %s: %v", job, err)
	}
	return data, superstep, true, nil
}

// Delete implements Deleter: it removes job's snapshot file, if any.
func (d *DiskStore) Delete(job string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := os.Remove(d.path(job)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("checkpoint: deleting snapshot of %s: %v", job, err)
	}
	return nil
}

// BytesWritten implements Store.
func (d *DiskStore) BytesWritten() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// Saves implements Store.
func (d *DiskStore) Saves() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.saves
}
