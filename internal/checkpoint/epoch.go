package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strconv"
)

// Epoch-addressed checkpoint layout with an atomic commit marker, built
// on top of any Store. The asynchronous checkpoint pipeline writes each
// partition's blob under a (job, epoch, partition) key while the next
// superstep already runs; only once every blob of the epoch has landed
// does a single Commit publish the CommitRecord under the job's commit
// key — the one atomic step of the protocol. Restore reads the commit
// record first and only ever assembles blobs it references, so a torn
// (partially written, crashed or discarded) epoch is invisible: the
// previous committed epoch stays the restore target until the next
// marker lands.

// CommitRecord is the atomically published description of one committed
// checkpoint epoch.
type CommitRecord struct {
	// Epoch is the commit's own epoch number (monotonically increasing
	// per writer).
	Epoch uint64
	// Superstep is the superstep the snapshot was taken after (-1 for
	// the initial state).
	Superstep int
	// Parts maps each state partition to the epoch whose blob holds its
	// current contents. A full snapshot maps every partition to Epoch;
	// an incremental one keeps unchanged partitions pointing at older
	// epochs.
	Parts map[int]uint64
	// Compressed reports that partition blobs were gzip-compressed
	// before hitting the store.
	Compressed bool
}

func epochPartKey(job string, epoch uint64, part int) string {
	return job + "#epoch-" + strconv.FormatUint(epoch, 10) + "#part-" + strconv.Itoa(part)
}

func commitKey(job string) string { return job + "#commit" }

// SaveEpochPartition persists one partition blob of an uncommitted
// epoch. The blob stays invisible to LoadCommitted until Commit
// publishes a record referencing it.
func SaveEpochPartition(s Store, job string, epoch uint64, superstep, part int, data []byte) error {
	if err := s.Save(epochPartKey(job, epoch, part), superstep, data); err != nil {
		return fmt.Errorf("checkpoint: saving %s epoch %d partition %d: %v", job, epoch, part, err)
	}
	return nil
}

// Commit atomically publishes rec as job's current checkpoint. Every
// partition blob rec references must already be saved.
func Commit(s Store, job string, rec CommitRecord) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return fmt.Errorf("checkpoint: encoding commit record of %s: %v", job, err)
	}
	if err := s.Save(commitKey(job), rec.Superstep, buf.Bytes()); err != nil {
		return fmt.Errorf("checkpoint: committing epoch %d of %s: %v", rec.Epoch, job, err)
	}
	return nil
}

// LoadCommitRecord returns job's current commit record without touching
// the partition blobs it references. ok is false if no epoch was ever
// committed. A resuming AsyncWriter uses this to continue the job's
// epoch numbering instead of restarting at 1 and reclaiming blobs the
// committed record still references.
func LoadCommitRecord(s Store, job string) (CommitRecord, bool, error) {
	var rec CommitRecord
	raw, _, ok, err := s.Load(commitKey(job))
	if err != nil {
		return rec, false, fmt.Errorf("checkpoint: loading commit record of %s: %v", job, err)
	}
	if !ok {
		return rec, false, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&rec); err != nil {
		return rec, false, fmt.Errorf("checkpoint: decoding commit record of %s: %v", job, err)
	}
	return rec, true, nil
}

// LoadCommitted returns job's current committed checkpoint: the commit
// record and one ready-to-restore (decompressed) blob per partition.
// ok is false if no epoch was ever committed. A referenced blob that is
// missing or torn is an error — never a partial result.
func LoadCommitted(s Store, job string) (CommitRecord, map[int][]byte, bool, error) {
	rec, ok, err := LoadCommitRecord(s, job)
	if err != nil || !ok {
		return rec, nil, ok, err
	}
	blobs := make(map[int][]byte, len(rec.Parts))
	for part, epoch := range rec.Parts {
		data, _, ok, err := s.Load(epochPartKey(job, epoch, part))
		if err != nil {
			return rec, nil, false, fmt.Errorf("checkpoint: loading %s epoch %d partition %d: %v", job, epoch, part, err)
		}
		if !ok {
			return rec, nil, false, fmt.Errorf("checkpoint: %s commit %d references missing blob (epoch %d, partition %d)", job, rec.Epoch, epoch, part)
		}
		if rec.Compressed {
			if data, err = decompress(data); err != nil {
				return rec, nil, false, fmt.Errorf("checkpoint: %s epoch %d partition %d: %v", job, epoch, part, err)
			}
		}
		blobs[part] = data
	}
	return rec, blobs, true, nil
}

// DiscardEpochParts removes the listed partition blobs of an
// uncommitted or superseded epoch, if the store supports deletion.
// Best-effort garbage collection: failures are ignored, since an
// orphaned blob is unreachable anyway (no commit record references it).
func DiscardEpochParts(s Store, job string, epoch uint64, parts []int) {
	del, ok := s.(Deleter)
	if !ok {
		return
	}
	for _, p := range parts {
		del.Delete(epochPartKey(job, epoch, p))
	}
}
