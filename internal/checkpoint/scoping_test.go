package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
)

// Regression: two jobs sharing one checkpoint store used to be able to
// reclaim each other's in-flight blobs through two unscoped paths.
//
// Path 1 — the DiskStore `.tmp-` sweep. NewDiskStore swept *every*
// temp file in the directory, so job B (re)opening a shared directory
// while job A sat between CreateTemp and Rename deleted A's in-flight
// temp and failed A's Save. The sweep is now an explicit per-job
// SweepTemp, invoked by the owning AsyncWriter for its own key prefix
// only.
func TestConcurrentJobsSharedDirTempSweepScoped(t *testing.T) {
	dir := t.TempDir()
	storeA, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Job A mid-Save: its epoch blob temp exists but the rename has not
	// happened yet (exactly what a concurrent Save looks like from
	// another process's point of view). Plus a crash leftover of A's own
	// from an earlier incarnation.
	inflight := filepath.Join(dir, "jobA#epoch-3#part-0.tmp-1234")
	if err := os.WriteFile(inflight, []byte("half written"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Job B spins up its own pipeline on the same directory — store
	// open + async writer construction (which sweeps B's own scope).
	storeB, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	leftoverB := filepath.Join(dir, "jobB#epoch-1#part-0.tmp-9")
	if err := os.WriteFile(leftoverB, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	wb := NewAsyncWriter(storeB, "jobB", AsyncOptions{})
	if err := wb.Submit(0, sliceSnap{[]byte("b0")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := wb.Drain(); err != nil {
		t.Fatal(err)
	}

	// B's own leftover is swept, A's in-flight temp survives.
	if _, err := os.Stat(leftoverB); !os.IsNotExist(err) {
		t.Fatal("jobB's stale temp not swept by its own writer")
	}
	if _, err := os.Stat(inflight); err != nil {
		t.Fatal("jobB's pipeline reclaimed jobA's in-flight temp")
	}

	// A's "in-flight" write completes fine and both jobs commit.
	wa := NewAsyncWriter(storeA, "jobA", AsyncOptions{})
	if err := wa.Submit(0, sliceSnap{[]byte("a0")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := wa.Drain(); err != nil {
		t.Fatal(err)
	}
	for job, want := range map[string]string{"jobA": "a0", "jobB": "b0"} {
		_, blobs, ok, err := LoadCommitted(storeA, job)
		if err != nil || !ok {
			t.Fatalf("LoadCommitted(%s): ok=%v err=%v", job, ok, err)
		}
		if string(blobs[0]) != want {
			t.Fatalf("%s partition 0 = %q, want %q", job, blobs[0], want)
		}
	}
}

// Path 2 — the superseded-blob GC and failed-write discard. A fresh
// AsyncWriter used to restart epoch numbering at 1 even when the store
// already held a committed epoch of the job (a previous incarnation —
// e.g. the policy re-Setup after a coordinator restart). Its first
// failed write would then DiscardEpochParts(epoch 1, …), deleting blobs
// the committed record still references, and the next restore would
// hard-fail on a missing blob. The writer now resumes numbering and the
// incremental baseline from the store's commit record.
func TestWriterIncarnationsDoNotReclaimCommittedBlobs(t *testing.T) {
	s := NewMemoryStore()

	// Incarnation 1: incremental commits. Epoch 1 = full {p0, p1},
	// epoch 2 = dirty p1 only, so the commit record keeps p0 pinned at
	// epoch 1.
	w1 := NewAsyncWriter(s, "job", AsyncOptions{})
	if err := w1.Submit(0, sliceSnap{[]byte("p0v1"), []byte("p1v1")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w1.Submit(1, sliceSnap{[]byte("p0v1"), []byte("p1v2")}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := w1.Drain(); err != nil {
		t.Fatal(err)
	}
	rec, _ := w1.LastCommitted()
	if rec.Parts[0] != 1 || rec.Parts[1] != 2 {
		t.Fatalf("baseline commit parts = %v", rec.Parts)
	}

	// Incarnation 2 on the same store and job: its first write fails
	// (snapshot error on partition 1 after partition 0 encoded). The
	// failed write's discard must only touch the *new* epoch's keys.
	w2 := NewAsyncWriter(s, "job", AsyncOptions{})
	if err := w2.Submit(2, sliceSnap{[]byte("p0v2"), nil}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w2.Drain(); err == nil {
		t.Fatal("failing snapshot committed")
	}

	// The committed epoch of incarnation 1 must still restore intact.
	rec2, blobs, ok, err := LoadCommitted(s, "job")
	if err != nil || !ok {
		t.Fatalf("LoadCommitted after failed incarnation-2 write: ok=%v err=%v", ok, err)
	}
	if rec2.Epoch != rec.Epoch {
		t.Fatalf("committed epoch moved: %d -> %d", rec.Epoch, rec2.Epoch)
	}
	if string(blobs[0]) != "p0v1" || string(blobs[1]) != "p1v2" {
		t.Fatalf("restored blobs = %q, %q", blobs[0], blobs[1])
	}

	// A healthy incarnation continues the numbering past the committed
	// epoch and builds incrementally on the committed baseline.
	w3 := NewAsyncWriter(s, "job", AsyncOptions{})
	if last, ok := w3.LastCommitted(); !ok || last.Epoch != rec.Epoch {
		t.Fatalf("resumed baseline = %+v ok=%v", last, ok)
	}
	if err := w3.Submit(2, sliceSnap{[]byte("p0v3"), []byte("p1v2")}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := w3.Drain(); err != nil {
		t.Fatal(err)
	}
	rec3, blobs3, ok, err := LoadCommitted(s, "job")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if rec3.Epoch <= rec.Epoch {
		t.Fatalf("incarnation 3 epoch %d did not advance past committed %d", rec3.Epoch, rec.Epoch)
	}
	if rec3.Parts[1] != 2 {
		t.Fatalf("incremental baseline lost: p1 pinned at epoch %d, want 2", rec3.Parts[1])
	}
	if string(blobs3[0]) != "p0v3" || string(blobs3[1]) != "p1v2" {
		t.Fatalf("restored blobs = %q, %q", blobs3[0], blobs3[1])
	}
}
