// Package optiflow is an iterative dataflow runtime with optimistic,
// compensation-based recovery — a from-scratch Go reproduction of the
// system demonstrated in "Optimistic Recovery for Iterative Dataflows
// in Action" (SIGMOD 2015), which showcases the recovery mechanism of
// Schelter et al., CIKM 2013, on Apache Flink.
//
// The library contains a parallel dataflow engine (Map/Reduce/Join/
// CoGroup operators over hash exchanges, with operator fusion), bulk
// and delta iterations with partitioned state, a cluster model whose
// worker failures destroy state partitions, and seven fault-tolerance
// policies:
//
//   - Optimistic (the paper's contribution): no checkpoints; after a
//     failure a compensation function restores a consistent state and
//     the fixpoint iteration converges to the correct result anyway.
//   - Checkpoint: classic rollback recovery with periodic snapshots
//     (memory, disk, or gzip-compressed stores).
//   - IncrementalCheckpoint / DeltaCheckpoint: per-partition and
//     per-key incremental snapshot variants.
//   - Confined: CoRAL-style accumulator replay for monotone vertex
//     programs.
//   - Restart: restart the iteration from scratch (the lineage
//     fallback for iterative jobs).
//   - None: abort on failure.
//
// Ready-made algorithms: Connected Components (delta and bulk
// iterations with fix-components compensation), PageRank (bulk
// iteration with fix-ranks), single-source shortest paths, ALS matrix
// factorization, k-means clustering, and a generic Pregel-style
// vertex-centric layer with pluggable compensation.
//
// Quick start:
//
//	g, _ := optiflow.DemoGraph()
//	res, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{
//		Parallelism: 4,
//		Policy:      optiflow.OptimisticRecovery(),
//		Injector:    optiflow.FailWorker(3, 1), // kill worker 1 in superstep 3
//	})
package optiflow

import (
	"io"

	"optiflow/internal/algo/als"
	"optiflow/internal/algo/cc"
	"optiflow/internal/algo/kmeans"
	"optiflow/internal/algo/pagerank"
	"optiflow/internal/algo/ref"
	"optiflow/internal/algo/sssp"
	"optiflow/internal/checkpoint"
	"optiflow/internal/cluster"
	"optiflow/internal/cluster/proc"
	"optiflow/internal/dataflow"
	"optiflow/internal/exec"
	"optiflow/internal/failure"
	"optiflow/internal/graph"
	"optiflow/internal/graph/gen"
	"optiflow/internal/iterate"
	"optiflow/internal/recovery"
	"optiflow/internal/state"
	"optiflow/internal/supervise"
	"optiflow/internal/vertexcentric"
)

// Core graph types.
type (
	// Graph is an immutable CSR graph; build one with NewGraphBuilder
	// or a generator.
	Graph = graph.Graph
	// GraphBuilder accumulates edges into a Graph.
	GraphBuilder = graph.Builder
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// Edge is a directed, optionally weighted edge.
	Edge = graph.Edge
	// Layout maps vertices to 2-D points for visualisation.
	Layout = gen.Layout
)

// Iteration and recovery types.
type (
	// Sample is the per-superstep-attempt data point (messages, updates,
	// failure annotations) — what the demo GUI plots.
	Sample = iterate.Sample
	// LoopResult summarises a finished iterative job.
	LoopResult = iterate.Result
	// StepStats is what one superstep reports.
	StepStats = iterate.StepStats
	// Policy is a fault-tolerance strategy.
	Policy = recovery.Policy
	// Overhead quantifies failure-free fault-tolerance cost.
	Overhead = recovery.Overhead
	// Injector decides which workers fail in which supersteps.
	Injector = failure.Injector
	// Cluster models workers owning state partitions (the in-process
	// simulation; see ClusterBackend for the shared interface).
	Cluster = cluster.Cluster
	// ClusterBackend is the interface shared by the in-process
	// simulation and the multi-process TCP cluster
	// (internal/cluster/proc), so loops run unchanged in both modes.
	ClusterBackend = cluster.Interface
	// CheckpointStore is stable storage for rollback recovery.
	CheckpointStore = checkpoint.Store
)

// Dataflow construction types, for building custom iterative jobs.
type (
	// Emit hands a record to the downstream operators.
	Emit = dataflow.Emit
	// KeyFunc extracts a record's partitioning/grouping key.
	KeyFunc = dataflow.KeyFunc
	// SourceFunc produces the records of one partition.
	SourceFunc = dataflow.SourceFunc
	// SinkFunc consumes the records of one partition.
	SinkFunc = dataflow.SinkFunc
	// Plan is a DAG of dataflow operators.
	Plan = dataflow.Plan
	// Dataset is an operator output handle during plan building.
	Dataset = dataflow.Dataset
	// Engine executes plans with fixed parallelism.
	Engine = exec.Engine
	// EngineStats reports per-edge record counts of a plan execution.
	EngineStats = exec.Stats
	// Loop drives an iterative job superstep by superstep.
	Loop = iterate.Loop
)

// The typed columnar path (DESIGN.md §2.6): graph supersteps whose
// payloads are numeric run as column batches over a CSR adjacency with
// no per-record boxing. ConnectedComponents, PageRank and ShortestPaths
// use it by default; these exports let custom jobs build their own
// columnar supersteps.
type (
	// ColValue is the payload universe of the columnar path.
	ColValue = exec.ColValue
	// ColKeys is a borrowed column of dense destination vertex indices
	// handed to Apply callbacks; consume in place, do not retain.
	ColKeys = exec.KeyCol
	// ColVals is the borrowed payload column parallel to a ColKeys.
	ColVals[V ColValue] = exec.ValCol[V]
	// ColBatch is one pooled columnar exchange batch.
	ColBatch[V ColValue] = exec.ColBatch[V]
	// ColEngine executes columnar supersteps with fixed parallelism.
	ColEngine[V ColValue] = exec.ColEngine[V]
	// ColStep describes one columnar superstep (source rows -> CSR edge
	// expansion -> hash exchange -> monotone fold -> apply).
	ColStep[V ColValue] = exec.ColStep[V]
	// ColStats reports what a columnar superstep did.
	ColStats = exec.ColStats
	// DenseGraph is a graph's CSR adjacency with dense int32 indexing.
	DenseGraph = graph.Dense
	// DensePartitioning maps dense vertex indices onto partitions.
	DensePartitioning = graph.Partitioning
	// DenseStore is a dense per-partition column store for vertex state.
	DenseStore[V any] = state.DenseStore[V]
	// ColWorkset is a columnar delta-iteration workset.
	ColWorkset[V any] = state.ColWorkset[V]
	// Interner assigns dense integer IDs to strings so string-keyed
	// workloads route and join on integers.
	Interner = exec.Interner
)

// NewInterner returns an empty string interner with a lock-free read
// path.
func NewInterner() *Interner { return exec.NewInterner() }

// NewGraphBuilder returns a builder for a directed or undirected graph.
func NewGraphBuilder(directed bool) *GraphBuilder { return graph.NewBuilder(directed) }

// ReadEdgeList parses a whitespace-separated edge list ("src dst
// [weight]" lines, #-comments allowed).
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	return graph.ReadEdgeList(r, directed)
}

// WriteEdgeList writes g as a parseable edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// NewPlan returns an empty dataflow plan.
func NewPlan(name string) *Plan { return dataflow.NewPlan(name) }

// Graph generators.

// DemoGraph returns the paper's small hand-crafted demo graph
// (undirected, three connected components) and its fixed layout.
func DemoGraph() (*Graph, Layout) { return gen.Demo() }

// DemoGraphDirected returns the directed demo variant used by the
// PageRank tab (includes one dangling vertex).
func DemoGraphDirected() (*Graph, Layout) { return gen.DemoDirected() }

// TwitterGraph generates the synthetic stand-in for the paper's Twitter
// follower snapshot: a directed Barabási–Albert power-law graph with n
// vertices.
func TwitterGraph(n int, seed int64) *Graph { return gen.Twitter(n, seed) }

// BarabasiAlbertGraph generates a scale-free graph by preferential
// attachment with m edges per new vertex.
func BarabasiAlbertGraph(n, m int, seed int64, directed bool) *Graph {
	return gen.BarabasiAlbert(n, m, seed, directed)
}

// RMATGraph generates a recursive-matrix graph with 2^scale vertices.
func RMATGraph(scale, edgeFactor int, seed int64, directed bool) *Graph {
	return gen.RMAT(scale, edgeFactor, 0.57, 0.19, 0.19, 0.05, seed, directed)
}

// ErdosRenyiGraph generates a G(n, p) random graph.
func ErdosRenyiGraph(n int, p float64, seed int64, directed bool) *Graph {
	return gen.ErdosRenyi(n, p, seed, directed)
}

// GridGraph generates a rows x cols lattice.
func GridGraph(rows, cols int) *Graph { return gen.Grid(rows, cols) }

// Recovery policies.

// OptimisticRecovery returns the paper's checkpoint-free policy: zero
// failure-free overhead; on failure the algorithm's compensation
// function restores a consistent state and execution continues.
func OptimisticRecovery() Policy { return recovery.Optimistic{} }

// CheckpointRecovery returns pessimistic rollback recovery: snapshot
// every interval supersteps into store, restore-and-redo on failure.
func CheckpointRecovery(interval int, store CheckpointStore) Policy {
	return recovery.NewCheckpoint(interval, store)
}

// IncrementalCheckpointRecovery returns rollback recovery with
// per-partition incremental snapshots: only partitions whose contents
// changed since the previous checkpoint are re-written. Note the
// documented limitation: under hash partitioning every partition tends
// to stay hot, so this rarely beats full checkpoints — prefer
// DeltaCheckpointRecovery. The job must support per-partition
// snapshots (the built-in algorithms do).
func IncrementalCheckpointRecovery(interval int, store CheckpointStore) Policy {
	ps, ok := store.(checkpoint.PartStore)
	if !ok {
		panic("optiflow: store does not support per-partition snapshots")
	}
	return recovery.NewIncrementalCheckpoint(interval, ps)
}

// AsyncCheckpointRecovery returns rollback recovery with the
// asynchronous, partition-sharded checkpoint pipeline: the superstep
// barrier pays only a cheap copy-on-write capture, while partition
// encoding and the store writes run on `parallelism` background
// encoders, committed atomically per epoch. Failures only ever restore
// fully committed epochs — an in-flight or torn epoch is never a
// restore target. The job must support shared-snapshot capture (the
// built-in algorithms do).
func AsyncCheckpointRecovery(interval int, store CheckpointStore, parallelism int) Policy {
	return recovery.NewAsyncCheckpoint(interval, store, parallelism)
}

// AsyncIncrementalCheckpointRecovery is AsyncCheckpointRecovery
// submitting only the partitions whose version changed since the last
// epoch; unchanged partitions are stitched from older epochs at restore
// time.
func AsyncIncrementalCheckpointRecovery(interval int, store CheckpointStore, parallelism int) Policy {
	c := recovery.NewAsyncCheckpoint(interval, store, parallelism)
	c.Incremental = true
	return c
}

// CheckpointLogStore is stable storage for delta-log snapshot chains.
type CheckpointLogStore = checkpoint.LogStore

// NewMemoryCheckpointLogStore returns an in-memory snapshot-chain
// store.
func NewMemoryCheckpointLogStore() CheckpointLogStore { return checkpoint.NewMemoryLogStore() }

// NewDiskCheckpointLogStore returns a snapshot-chain store writing
// synced files under dir.
func NewDiskCheckpointLogStore(dir string) (CheckpointLogStore, error) {
	return checkpoint.NewDiskLogStore(dir)
}

// DeltaCheckpointRecovery returns rollback recovery with per-key delta
// logs: a base snapshot once, then only the state changes per interval,
// compacted periodically. On delta iterations this tracks the shrinking
// update stream and writes a fraction of what full checkpoints cost.
func DeltaCheckpointRecovery(interval int, store CheckpointLogStore) Policy {
	return recovery.NewDeltaCheckpoint(interval, store)
}

// ConfinedRecovery rebuilds lost vertices in place from accumulator
// replicas logged during failure-free execution — recovery touches only
// the lost vertices, at the cost of one combine per delivered message
// while nothing fails. Supported by vertex-centric programs with a
// Combine function and AccumulatorLog enabled; sound when Compute is a
// monotone fold of combined messages (min/max style).
func ConfinedRecovery() Policy { return recovery.Confined{} }

// RestartRecovery restarts the iteration from superstep zero on
// failure.
func RestartRecovery() Policy { return recovery.Restart{} }

// NoRecovery aborts the job on the first failure.
func NoRecovery() Policy { return recovery.None{} }

// NewMemoryCheckpointStore returns an in-memory checkpoint store.
func NewMemoryCheckpointStore() CheckpointStore { return checkpoint.NewMemoryStore() }

// NewDiskCheckpointStore returns a checkpoint store writing synced
// snapshot files under dir.
func NewDiskCheckpointStore(dir string) (CheckpointStore, error) {
	return checkpoint.NewDiskStore(dir)
}

// CompressedCheckpointStore wraps a store with gzip compression:
// snapshots shrink several-fold at the cost of checkpoint CPU time.
func CompressedCheckpointStore(inner CheckpointStore) CheckpointStore {
	return checkpoint.Compressed(inner)
}

// Failure injection.

// FailWorker schedules worker to fail during the given superstep —
// the API equivalent of the demo GUI's failure button.
func FailWorker(superstep, worker int) *failure.Scripted {
	return failure.NewScripted(nil).At(superstep, worker)
}

// ScriptedFailures builds an injector from a superstep -> workers plan.
func ScriptedFailures(plan map[int][]int) *failure.Scripted {
	return failure.NewScripted(plan)
}

// FailWorkerMidStep schedules worker to fail while the given
// superstep's dataflow is still executing, after the attempt has
// processed afterRecords records: the running plan is aborted and the
// attempt retried under the configured recovery policy — the GUI
// attendee pressing the failure button mid-iteration.
func FailWorkerMidStep(superstep int, afterRecords int64, worker int) *failure.Scripted {
	return failure.NewScripted(nil).AtMidStep(superstep, afterRecords, worker)
}

// RandomFailures fails a random live worker with probability p per
// superstep, at most maxFailures times (0 = unlimited). Deterministic
// given seed.
func RandomFailures(p float64, seed int64, maxFailures int) Injector {
	return failure.NewRandom(p, seed, maxFailures)
}

// NoFailures returns an injector that never fails anything.
func NoFailures() Injector { return failure.None{} }

// ChaosFailures returns the seeded chaos-soak injector: random boundary
// failures, mid-superstep aborts and failures during recovery rounds,
// each drawn from its own seed-derived rng so the full schedule is
// reproducible. Tune with its WithProbabilities / WithMaxFailures /
// Until methods; pair with SuperviseConfig so recovery can keep up.
func ChaosFailures(seed int64) *failure.Chaos { return failure.NewChaos(seed) }

// Supervision: self-healing recovery with a bounded spare pool,
// acquire retry/backoff, degraded-mode repartitioning and policy
// escalation. Set the Supervise field of CCOptions / PROptions, or
// build a Loop Supervisor directly for custom jobs.
type (
	// SuperviseConfig configures the recovery supervisor.
	SuperviseConfig = supervise.Config
	// SuperviseOutcome summarises one supervised recovery.
	SuperviseOutcome = supervise.Outcome

	// ClusterFactory provisions a cluster backend for a run — wrap
	// NewCluster with ClusterOptions for the in-process simulation, or
	// use NewProcCluster for real worker processes.
	ClusterFactory = supervise.ClusterFactory
)

// NewSupervisor builds a recovery supervisor for a custom Loop: assign
// it to the Loop's Supervisor field and construct the cluster with
// cfg.ClusterOptions() so the spare pool and hooks take effect.
func NewSupervisor(cl ClusterBackend, policy Policy, injector Injector, cfg SuperviseConfig) *supervise.Supervisor {
	return supervise.New(cl, policy, injector, cfg)
}

// Algorithms.

// CCOptions configure ConnectedComponents.
type CCOptions = cc.Options

// CCResult is the outcome of ConnectedComponents.
type CCResult = cc.Result

// ConnectedComponents runs the delta-iteration Connected Components of
// Fig. 1a (min-label diffusion with fix-components compensation).
func ConnectedComponents(g *Graph, opts CCOptions) (*CCResult, error) { return cc.Run(g, opts) }

// PROptions configure PageRank.
type PROptions = pagerank.Options

// PRResult is the outcome of PageRank.
type PRResult = pagerank.Result

// PRCompensation selects the compensation function of a PageRank run.
type PRCompensation = pagerank.Compensation

// PageRank runs the bulk-iteration PageRank of Fig. 1b (with fix-ranks
// compensation: lost probability mass is uniformly redistributed over
// the lost vertices).
func PageRank(g *Graph, opts PROptions) (*PRResult, error) { return pagerank.Run(g, opts) }

// PageRank compensation variants (experiment E8).
var (
	// FixRanks is the paper's compensation: redistribute the lost mass
	// uniformly over the lost vertices.
	FixRanks PRCompensation = pagerank.UniformRedistribution
	// ResetAllUniform resets every rank to 1/n.
	ResetAllUniform PRCompensation = pagerank.ResetAllUniform
	// ZeroFillRenormalize zeroes lost ranks and rescales survivors.
	ZeroFillRenormalize PRCompensation = pagerank.ZeroFillRenormalize
)

// ConnectedComponentsBulk runs Connected Components as a *bulk*
// iteration, recomputing every label each superstep — the baseline that
// motivates delta iterations in §2.1. Results are identical to
// ConnectedComponents; the message volume is not.
func ConnectedComponentsBulk(g *Graph, opts CCOptions) (*CCResult, error) { return cc.RunBulk(g, opts) }

// ALS types: matrix factorization with alternating least squares, the
// third algorithm class of the underlying CIKM'13 work.
type (
	// Rating is one observed entry of a rating matrix.
	Rating = als.Rating
	// Ratings is an indexed sparse rating matrix.
	Ratings = als.Ratings
	// ALSConfig parameterises the factorization model.
	ALSConfig = als.Config
	// ALSOptions configure an ALS training run.
	ALSOptions = als.Options
	// ALSResult is the outcome of an ALS run.
	ALSResult = als.Result
	// ALSModel is the trained factorization.
	ALSModel = als.ALS
)

// NewRatings indexes a list of rating entries.
func NewRatings(entries []Rating) *Ratings { return als.NewRatings(entries) }

// SyntheticRatings generates a rating matrix with known low-rank
// structure plus Gaussian noise — the stand-in for a real
// recommendation dataset.
func SyntheticRatings(numUsers, numItems, rank int, density, noise float64, seed int64) *Ratings {
	return als.SyntheticRatings(numUsers, numItems, rank, density, noise, seed)
}

// ALSFactorize trains a low-rank factorization with alternating least
// squares under the configured recovery policy; the compensation
// function re-initializes lost factor vectors with seeded random
// values.
func ALSFactorize(ratings *Ratings, opts ALSOptions) (*ALSResult, error) {
	return als.Run(ratings, opts)
}

// VertexProgramOptions configure a vertex-centric run.
type VertexProgramOptions = vertexcentric.Options

// ShortestPaths computes single-source shortest path distances as a
// vertex-centric delta iteration with compensation-based recovery.
// Unreached vertices map to +Inf.
func ShortestPaths(g *Graph, source VertexID, opts VertexProgramOptions) (map[VertexID]float64, error) {
	dist, _, err := sssp.Run(g, source, opts)
	return dist, err
}

// Ground truth helpers (the demo precomputes true values to plot
// convergence, §3.2 footnote 4).

// TrueComponents computes the exact component labeling via union-find.
func TrueComponents(g *Graph) map[VertexID]VertexID { return ref.ConnectedComponents(g) }

// TruePageRank computes exact ranks via sequential power iteration.
func TruePageRank(g *Graph, damping float64) map[VertexID]float64 {
	ranks, _ := ref.PageRank(g, ref.PageRankOptions{Damping: damping})
	return ranks
}

// TrueShortestPaths computes exact distances via Dijkstra.
func TrueShortestPaths(g *Graph, source VertexID) map[VertexID]float64 {
	return ref.ShortestPaths(g, source)
}

// Figure plans (Fig. 1 of the paper, for Explain/Dot rendering).

// CCFigurePlan returns the conceptual Connected Components dataflow of
// Fig. 1a, including the fix-components compensation node.
func CCFigurePlan() *Plan { return cc.FigurePlan() }

// PRFigurePlan returns the conceptual PageRank dataflow of Fig. 1b,
// including the fix-ranks compensation node.
func PRFigurePlan() *Plan { return pagerank.FigurePlan() }

// Vertex-centric programming: write your own recoverable fixpoint
// algorithm by supplying Init/Compute plus the recovery hooks
// (Compensate / Reactivate, optionally Combine for confined recovery).
type (
	// VertexProgram defines a Pregel-style computation with recovery
	// hooks; S is the vertex state type, M the message type.
	VertexProgram[S, M any] = vertexcentric.Program[S, M]
	// VertexMessage is a message in flight to a vertex.
	VertexMessage[M any] = vertexcentric.Outbound[M]
	// VertexResult is the outcome of a vertex-centric run.
	VertexResult[S, M any] = vertexcentric.Result[S, M]
)

// RunVertexProgram executes a vertex-centric program until no messages
// remain, recovering from injected failures per the configured policy.
func RunVertexProgram[S, M any](prog VertexProgram[S, M], g *Graph, opts VertexProgramOptions) (*VertexResult[S, M], error) {
	return vertexcentric.Run(prog, g, opts)
}

// K-Means types: Lloyd's algorithm as a bulk iteration, with centroid
// re-seeding compensation.
type (
	// KMeansPoint is a dense feature vector.
	KMeansPoint = kmeans.Point
	// KMeansConfig parameterises the clustering model.
	KMeansConfig = kmeans.Config
	// KMeansOptions configure a clustering run.
	KMeansOptions = kmeans.Options
	// KMeansResult is the outcome of a clustering run.
	KMeansResult = kmeans.Result
	// KMeansModel is the trained clustering.
	KMeansModel = kmeans.KMeans
)

// KMeansCluster runs Lloyd's algorithm under the configured recovery
// policy; the compensation function re-seeds lost centroids with
// deterministically chosen data points.
func KMeansCluster(data []KMeansPoint, opts KMeansOptions) (*KMeansResult, error) {
	return kmeans.Run(data, opts)
}

// SyntheticBlobs generates points around k well-separated Gaussian
// blobs — clusterable ground truth for the k-means experiments.
func SyntheticBlobs(n, k, dim int, spread float64, seed int64) []KMeansPoint {
	return kmeans.SyntheticBlobs(n, k, dim, spread, seed)
}

// Custom iterative jobs: implement RecoveryJob, drive it with a Loop,
// and pick any Policy — the same machinery the built-in algorithms use.
type (
	// RecoveryJob is the surface a recovery policy operates on:
	// snapshot, restore, clear, compensate, reset.
	RecoveryJob = recovery.Job
	// RecoveryFailure describes one failure event as seen by a policy.
	RecoveryFailure = recovery.Failure
	// LoopContext describes the superstep attempt a loop body executes.
	LoopContext = iterate.Context
)

// ClusterOption configures NewCluster (spare pool bounds, acquisition
// hooks, event-log caps).
type ClusterOption = cluster.Option

// WithSpares bounds the cluster's spare pool: AcquireN grants at most n
// replacement workers over the cluster's lifetime before acquisitions
// are denied and the supervisor falls back to degraded mode.
func WithSpares(n int) ClusterOption { return cluster.WithSpares(n) }

// WithEventCap bounds the cluster's event log to the most recent n
// events (dropped events stay countable) for long soak runs.
func WithEventCap(n int) ClusterOption { return cluster.WithEventCap(n) }

// NewCluster models numWorkers workers owning numPartitions state
// partitions round-robin, for driving a custom Loop.
func NewCluster(numWorkers, numPartitions int, opts ...ClusterOption) *Cluster {
	return cluster.New(numWorkers, numPartitions, opts...)
}

// NewProcCluster boots the multi-process cluster: numWorkers real
// worker-daemon processes (this binary re-executed) connected to an
// in-process coordinator over loopback TCP, behind the same
// ClusterBackend interface as NewCluster — except Fail delivers an
// actual SIGKILL. The returned stop func kills any workers still
// running. The hosting binary must call WorkerProcessMain first thing
// in main.
func NewProcCluster(numWorkers, numPartitions int) (ClusterBackend, func(), error) {
	return proc.Provision(numWorkers, numPartitions, nil)
}

// WorkerProcessMain checks whether this process was spawned as a
// worker daemon of a multi-process cluster and, if so, runs the worker
// and exits — it never returns in that case. Call it first thing in
// main (before flag parsing) in any binary that uses NewProcCluster.
func WorkerProcessMain() { proc.MaybeChildMode() }

// BulkTermination returns a Loop termination predicate for bulk
// iterations (max supersteps, optional convergence test).
func BulkTermination(maxIterations int, converged func(committed int) bool) func(int) bool {
	return iterate.BulkDone(maxIterations, converged)
}

// DeltaTermination returns a Loop termination predicate for delta
// iterations (stop on empty workset).
func DeltaTermination(worksetLen func() int) func(int) bool {
	return iterate.DeltaDone(worksetLen)
}
