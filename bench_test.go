// Benchmarks regenerating the measurable artifact behind every figure
// of the paper (run with `go test -bench=. -benchmem`):
//
//	BenchmarkFig1a / Fig1b   — Figure 1: dataflow plan construction + rendering
//	BenchmarkFig2_CCDemo     — Figures 2/3: CC demo scenario with two failures
//	BenchmarkFig4_PRDemo     — Figures 4/5: PageRank demo scenario with a failure
//	BenchmarkTwitter_*       — §3.1 large-graph scenario (Twitter substitute)
//	BenchmarkOverhead_*      — E6: failure-free cost per recovery policy
//	BenchmarkRecovery_*      — E7: recovery cost per policy (failure at iteration 6)
//	BenchmarkCompensation_*  — E8: compensation-function variants
//	BenchmarkBulkDelta_*     — E9: bulk vs delta iterations; BenchmarkCombiner_*: combiner ablation
//	BenchmarkALS_* / BenchmarkKMeans_* — E10/E12: the ML extensions
//	BenchmarkConfined_*      — E11: confined recovery
//	BenchmarkEngine_*        — microbenchmarks of the dataflow engine substrate
package optiflow_test

import (
	"bytes"
	"testing"

	"optiflow"
	"optiflow/internal/algo/cc"
	"optiflow/internal/algo/pagerank"
	"optiflow/internal/checkpoint"
	"optiflow/internal/dataflow"
	"optiflow/internal/exec"
	"optiflow/internal/graph"
	"optiflow/internal/graph/gen"
	"optiflow/internal/recovery"
	"optiflow/internal/state"
)

const benchGraphSize = 20000

func benchTwitter(b *testing.B) *optiflow.Graph {
	b.Helper()
	return optiflow.TwitterGraph(benchGraphSize, 20150531)
}

func BenchmarkFig1a_CCPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plan := optiflow.CCFigurePlan()
		if plan.Explain() == "" {
			b.Fatal("empty explain")
		}
	}
}

func BenchmarkFig1b_PRPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plan := optiflow.PRFigurePlan()
		if plan.Explain() == "" {
			b.Fatal("empty explain")
		}
	}
}

func BenchmarkFig2_CCDemo(b *testing.B) {
	g, _ := optiflow.DemoGraph()
	truth := optiflow.TrueComponents(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{
			Parallelism: 4,
			Injector:    optiflow.ScriptedFailures(map[int][]int{0: {0}, 2: {1}}),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Components[7] != truth[7] {
			b.Fatal("wrong result")
		}
	}
}

func BenchmarkFig4_PRDemo(b *testing.B) {
	g, _ := optiflow.DemoGraphDirected()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := optiflow.PageRank(g, optiflow.PROptions{
			Parallelism:   4,
			MaxIterations: 30,
			Injector:      optiflow.FailWorker(4, 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchTwitterUndirected rebuilds the Twitter-like graph undirected
// for CC, pre-sized from the known edge count.
func benchTwitterUndirected(b *testing.B) *optiflow.Graph {
	b.Helper()
	src := benchTwitter(b)
	und := optiflow.NewGraphBuilder(false).Reserve(src.NumVertices(), src.NumEdges())
	src.Edges(func(e optiflow.Edge) { und.AddEdge(e.Src, e.Dst) })
	return und.Build()
}

func benchTwitterCC(b *testing.B, boxed bool) {
	g := benchTwitterUndirected(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{
			Parallelism: 4,
			Injector:    optiflow.FailWorker(2, 1),
			Boxed:       boxed,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwitter_CC(b *testing.B) { benchTwitterCC(b, false) }

// BenchmarkTwitter_CC_Boxed pins the boxed []any record path so the
// committed artifact records the columnar speedup as a ratio.
func BenchmarkTwitter_CC_Boxed(b *testing.B) { benchTwitterCC(b, true) }

func benchTwitterPR(b *testing.B, boxed bool) {
	g := benchTwitter(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := optiflow.PageRank(g, optiflow.PROptions{
			Parallelism:   4,
			MaxIterations: 10,
			Injector:      optiflow.FailWorker(4, 2),
			Boxed:         boxed,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwitter_PR(b *testing.B) { benchTwitterPR(b, false) }

// BenchmarkTwitter_PR_Boxed pins the boxed []any record path (the
// denominator of the columnar speedup ratio).
func BenchmarkTwitter_PR_Boxed(b *testing.B) { benchTwitterPR(b, true) }

// benchOverhead measures failure-free PageRank under one policy — the
// E6 rows.
func benchOverhead(b *testing.B, mkPolicy func(b *testing.B) optiflow.Policy) {
	g := benchTwitter(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := optiflow.PageRank(g, optiflow.PROptions{
			Parallelism:   4,
			MaxIterations: 5,
			Policy:        mkPolicy(b),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverhead_NoFaultTolerance(b *testing.B) {
	benchOverhead(b, func(*testing.B) optiflow.Policy { return optiflow.NoRecovery() })
}

func BenchmarkOverhead_Optimistic(b *testing.B) {
	benchOverhead(b, func(*testing.B) optiflow.Policy { return optiflow.OptimisticRecovery() })
}

func BenchmarkOverhead_CheckpointK1Memory(b *testing.B) {
	benchOverhead(b, func(*testing.B) optiflow.Policy {
		return optiflow.CheckpointRecovery(1, optiflow.NewMemoryCheckpointStore())
	})
}

func BenchmarkOverhead_CheckpointK2Memory(b *testing.B) {
	benchOverhead(b, func(*testing.B) optiflow.Policy {
		return optiflow.CheckpointRecovery(2, optiflow.NewMemoryCheckpointStore())
	})
}

func BenchmarkOverhead_CheckpointK5Memory(b *testing.B) {
	benchOverhead(b, func(*testing.B) optiflow.Policy {
		return optiflow.CheckpointRecovery(5, optiflow.NewMemoryCheckpointStore())
	})
}

func BenchmarkOverhead_CheckpointK1Disk(b *testing.B) {
	benchOverhead(b, func(b *testing.B) optiflow.Policy {
		store, err := optiflow.NewDiskCheckpointStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		return optiflow.CheckpointRecovery(1, store)
	})
}

// benchRecovery measures PageRank-to-convergence with one failure — the
// E7 rows.
func benchRecovery(b *testing.B, mkPolicy func() optiflow.Policy) {
	g := benchTwitter(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := optiflow.PageRank(g, optiflow.PROptions{
			Parallelism:   4,
			MaxIterations: 100,
			Epsilon:       1e-9,
			Policy:        mkPolicy(),
			Injector:      optiflow.FailWorker(5, 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecovery_Optimistic(b *testing.B) {
	benchRecovery(b, optiflow.OptimisticRecovery)
}

func BenchmarkRecovery_RollbackK2(b *testing.B) {
	benchRecovery(b, func() optiflow.Policy {
		return optiflow.CheckpointRecovery(2, optiflow.NewMemoryCheckpointStore())
	})
}

func BenchmarkRecovery_Restart(b *testing.B) {
	benchRecovery(b, optiflow.RestartRecovery)
}

// benchCompensation measures the E8 compensation variants.
func benchCompensation(b *testing.B, comp optiflow.PRCompensation) {
	g := benchTwitter(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := optiflow.PageRank(g, optiflow.PROptions{
			Parallelism:   4,
			MaxIterations: 100,
			Epsilon:       1e-9,
			Compensation:  comp,
			Injector:      optiflow.FailWorker(5, 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompensation_FixRanks(b *testing.B) {
	benchCompensation(b, optiflow.FixRanks)
}

func BenchmarkCompensation_ResetAllUniform(b *testing.B) {
	benchCompensation(b, optiflow.ResetAllUniform)
}

func BenchmarkCompensation_ZeroFillRenormalize(b *testing.B) {
	benchCompensation(b, optiflow.ZeroFillRenormalize)
}

// Engine microbenchmarks: the substrate behind every experiment. Test
// records are boxed into []any outside the timed region so the numbers
// measure engine allocations, not the harness's interface conversions.

// benchRecords boxes n sequential uint64s once, outside the timer.
func benchRecords(n int) []any {
	data := make([]any, n)
	for j := range data {
		data[j] = uint64(j)
	}
	return data
}

func BenchmarkEngine_ShuffleReduce(b *testing.B) {
	const records = 100000
	data := benchRecords(records)
	eng := &exec.Engine{Parallelism: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := dataflow.NewPlan("shuffle-bench")
		src := plan.Source("numbers", func(part, nparts int, emit dataflow.Emit) error {
			for j := part; j < records; j += nparts {
				emit(data[j])
			}
			return nil
		})
		red := src.ReduceBy("sum-mod-1000",
			func(r any) uint64 { return r.(uint64) % 1000 },
			func(key uint64, vals []any, emit dataflow.Emit) {
				var s uint64
				for _, v := range vals {
					s += v.(uint64)
				}
				emit(s)
			})
		var sink int64
		red.Sink("count", func(int, any) error { sink++; return nil })
		if _, err := eng.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(records * 8))
}

// BenchmarkEngine_ShuffleCombine is the same workload through the
// streaming hash-aggregation path: per-key accumulators folded as
// records arrive, no group materialization.
func BenchmarkEngine_ShuffleCombine(b *testing.B) {
	const records = 100000
	data := benchRecords(records)
	eng := &exec.Engine{Parallelism: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := dataflow.NewPlan("combine-bench")
		src := plan.Source("numbers", func(part, nparts int, emit dataflow.Emit) error {
			for j := part; j < records; j += nparts {
				emit(data[j])
			}
			return nil
		})
		red := src.ReduceByCombining("sum-mod-1000",
			func(r any) uint64 { return r.(uint64) % 1000 },
			func(acc, rec any) any {
				if acc == nil {
					s := rec.(uint64)
					return &s
				}
				*acc.(*uint64) += rec.(uint64)
				return acc
			},
			func(key uint64, acc any, emit dataflow.Emit) {
				emit(*acc.(*uint64))
			})
		var sink int64
		red.Sink("count", func(int, any) error { sink++; return nil })
		if _, err := eng.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(records * 8))
}

func BenchmarkEngine_HashJoin(b *testing.B) {
	const rows = 50000
	data := benchRecords(rows)
	eng := &exec.Engine{Parallelism: 4}
	key := func(r any) uint64 { return r.(uint64) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := dataflow.NewPlan("join-bench")
		left := plan.Source("left", func(part, nparts int, emit dataflow.Emit) error {
			for j := part; j < rows; j += nparts {
				emit(data[j])
			}
			return nil
		})
		right := plan.Source("right", func(part, nparts int, emit dataflow.Emit) error {
			for j := part; j < rows; j += nparts {
				emit(data[j])
			}
			return nil
		})
		joined := left.Join("match", right, key, key, dataflow.JoinInner,
			func(l, r any, emit dataflow.Emit) { emit(l) })
		joined.Sink("out", func(int, any) error { return nil })
		if _, err := eng.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// Checkpoint-pipeline benchmarks (BENCH_PR5.json): barrier stall per
// policy. The op is exactly what the iteration barrier waits for —
// AfterSuperstep on a populated job. For the async pipeline the
// background write is drained outside the timer (Finish), so the
// numbers isolate the stall the loop pays, which is the pipeline's
// whole claim: capture + queue insert instead of encode + store write.

func benchCCJob() *cc.CC {
	und := optiflow.NewGraphBuilder(false)
	gen.Twitter(benchGraphSize, 3).Edges(func(e graph.Edge) { und.AddEdge(e.Src, e.Dst) })
	return cc.New(und.Build(), 8)
}

func benchPRJob() *pagerank.PR {
	return pagerank.New(gen.Twitter(benchGraphSize, 1), 8, 0.85, nil)
}

func benchCheckpointBarrier(b *testing.B, job recovery.IncrementalJob, pol optiflow.Policy, dirty func(i int)) {
	b.Helper()
	if err := pol.Setup(job); err != nil {
		b.Fatal(err)
	}
	fin, isAsync := pol.(recovery.Finisher)
	if isAsync {
		if err := fin.Finish(job); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dirty != nil {
			b.StopTimer()
			dirty(i)
			b.StartTimer()
		}
		if err := pol.AfterSuperstep(job, i); err != nil {
			b.Fatal(err)
		}
		if isAsync {
			b.StopTimer()
			if err := fin.Finish(job); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// dirtyOnePartition pre-encodes partition 0 and returns a mutator that
// restores it in place, bumping the partition's version so incremental
// policies see exactly one changed partition per superstep.
func dirtyOnePartition(b *testing.B, job recovery.IncrementalJob) func(int) {
	b.Helper()
	var buf bytes.Buffer
	if err := job.SnapshotPartition(0, &buf); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	return func(int) {
		if err := job.RestorePartition(0, blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointBarrier_CC_Sync(b *testing.B) {
	benchCheckpointBarrier(b, benchCCJob(), recovery.NewCheckpoint(1, checkpoint.NewMemoryStore()), nil)
}

func BenchmarkCheckpointBarrier_CC_Async(b *testing.B) {
	benchCheckpointBarrier(b, benchCCJob(), recovery.NewAsyncCheckpoint(1, checkpoint.NewMemoryStore(), 4), nil)
}

func BenchmarkCheckpointBarrier_CC_Incremental(b *testing.B) {
	job := benchCCJob()
	pol := recovery.NewIncrementalCheckpoint(1, checkpoint.NewMemoryStore())
	pol.Parallelism = 4
	benchCheckpointBarrier(b, job, pol, dirtyOnePartition(b, job))
}

func BenchmarkCheckpointBarrier_CC_AsyncIncremental(b *testing.B) {
	job := benchCCJob()
	pol := recovery.NewAsyncCheckpoint(1, checkpoint.NewMemoryStore(), 4)
	pol.Incremental = true
	benchCheckpointBarrier(b, job, pol, dirtyOnePartition(b, job))
}

func BenchmarkCheckpointBarrier_PR_Sync(b *testing.B) {
	benchCheckpointBarrier(b, benchPRJob(), recovery.NewCheckpoint(1, checkpoint.NewMemoryStore()), nil)
}

func BenchmarkCheckpointBarrier_PR_Async(b *testing.B) {
	benchCheckpointBarrier(b, benchPRJob(), recovery.NewAsyncCheckpoint(1, checkpoint.NewMemoryStore(), 4), nil)
}

// BenchmarkCheckpointCompress exercises the gzip path of Compressed
// stores and asserts the writer pool holds: steady-state saves must not
// re-allocate the ~1.4 MB deflate state per snapshot.
func BenchmarkCheckpointCompress(b *testing.B) {
	job := benchPRJob()
	var buf bytes.Buffer
	if err := job.SnapshotTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	store := optiflow.CompressedCheckpointStore(optiflow.NewMemoryCheckpointStore())
	save := func() {
		if err := store.Save("bench", 0, data); err != nil {
			b.Fatal(err)
		}
	}
	save() // warm the pool before counting
	if allocs := testing.AllocsPerRun(5, save); allocs > 64 {
		b.Fatalf("compressed save allocates %v objects/op; gzip.Writer pooling broken?", allocs)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		save()
	}
}

func BenchmarkCheckpoint_SnapshotEncode(b *testing.B) {
	g := gen.Twitter(benchGraphSize, 1)
	pr := pagerank.New(g, 4, 0.85, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := pr.SnapshotTo(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkCheckpoint_RoundTrip(b *testing.B) {
	g := gen.Grid(60, 60)
	job := cc.New(g, 4)
	var buf bytes.Buffer
	if err := job.SnapshotTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := job.RestoreFrom(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatePartitioning(b *testing.B) {
	s := state.NewStore[uint64]("bench", 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(uint64(i), uint64(i))
	}
}

func BenchmarkGraphPartition(b *testing.B) {
	var acc int
	for i := 0; i < b.N; i++ {
		acc += graph.Partition(graph.VertexID(i), 16)
	}
	if acc < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkSuperstep_CC measures one delta-iteration superstep in
// isolation (first superstep on a fresh job).
func BenchmarkSuperstep_CC(b *testing.B) {
	und := optiflow.NewGraphBuilder(false)
	gen.Twitter(benchGraphSize, 3).Edges(func(e graph.Edge) { und.AddEdge(e.Src, e.Dst) })
	g := und.Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		job := cc.New(g, 4)
		b.StartTimer()
		if _, err := job.Step(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Sanity: recovery policies survive a snapshot/restore cycle at bench
// scale (guards the benches above against silently broken state).
func BenchmarkRecoveryPolicySnapshot(b *testing.B) {
	g := gen.Twitter(5000, 9)
	job := pagerank.New(g, 4, 0.85, nil)
	pol := recovery.NewCheckpoint(1, checkpoint.NewMemoryStore())
	if err := pol.Setup(job); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pol.AfterSuperstep(job, i); err != nil {
			b.Fatal(err)
		}
		if _, err := pol.OnFailure(job, recovery.Failure{Superstep: i, LostPartitions: []int{1}}); err != nil {
			b.Fatal(err)
		}
	}
}

// Example-style smoke check keeping the benchmarks honest about
// correctness (runs as a test, not a bench).
func TestBenchScenariosProduceCorrectResults(t *testing.T) {
	g := optiflow.TwitterGraph(2000, 20150531)
	truth := optiflow.TruePageRank(g, 0.85)
	res, err := optiflow.PageRank(g, optiflow.PROptions{
		Parallelism: 4, MaxIterations: 100, Epsilon: 1e-10,
		Injector: optiflow.FailWorker(5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range truth {
		if d := res.Ranks[v] - want; d > 1e-7 || d < -1e-7 {
			t.Fatalf("vertex %d: rank %g vs truth %g", v, res.Ranks[v], want)
		}
	}
}

// Benches for the E9/E10 extensions.

func BenchmarkBulkDelta_DeltaCC(b *testing.B) {
	g := gen.Grid(30, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{Parallelism: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkDelta_BulkCC(b *testing.B) {
	g := gen.Grid(30, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optiflow.ConnectedComponentsBulk(g, optiflow.CCOptions{Parallelism: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombiner_PageRankPlain(b *testing.B) {
	g := benchTwitter(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optiflow.PageRank(g, optiflow.PROptions{Parallelism: 4, MaxIterations: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombiner_PageRankLocalCombine(b *testing.B) {
	g := benchTwitter(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optiflow.PageRank(g, optiflow.PROptions{Parallelism: 4, MaxIterations: 5, LocalCombine: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkALS_FailureFree(b *testing.B) {
	ratings := optiflow.SyntheticRatings(200, 150, 5, 0.2, 0.02, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := optiflow.ALSFactorize(ratings, optiflow.ALSOptions{
			Config:        optiflow.ALSConfig{Rank: 5, Parallelism: 4, Seed: 3},
			MaxIterations: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkALS_OptimisticRecovery(b *testing.B) {
	ratings := optiflow.SyntheticRatings(200, 150, 5, 0.2, 0.02, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := optiflow.ALSFactorize(ratings, optiflow.ALSOptions{
			Config:        optiflow.ALSConfig{Rank: 5, Parallelism: 4, Seed: 3},
			MaxIterations: 10,
			Injector:      optiflow.FailWorker(4, 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverhead_DeltaLogCheckpointCC(b *testing.B) {
	g := gen.Grid(30, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{
			Parallelism: 4,
			Policy:      optiflow.DeltaCheckpointRecovery(1, optiflow.NewMemoryCheckpointLogStore()),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverhead_FullCheckpointCC(b *testing.B) {
	g := gen.Grid(30, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{
			Parallelism: 4,
			Policy:      optiflow.CheckpointRecovery(1, optiflow.NewMemoryCheckpointStore()),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans_FailureFree(b *testing.B) {
	data := optiflow.SyntheticBlobs(2000, 6, 4, 12, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := optiflow.KMeansCluster(data, optiflow.KMeansOptions{
			Config: optiflow.KMeansConfig{K: 6, Parallelism: 4, Seed: 4},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans_OptimisticRecovery(b *testing.B) {
	data := optiflow.SyntheticBlobs(2000, 6, 4, 12, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := optiflow.KMeansCluster(data, optiflow.KMeansOptions{
			Config:   optiflow.KMeansConfig{K: 6, Parallelism: 4, Seed: 4},
			Injector: optiflow.FailWorker(1, 2),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConfined_SSSPRecovery(b *testing.B) {
	g := optiflow.GridGraph(40, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := optiflow.ShortestPaths(g, 0, optiflow.VertexProgramOptions{
			Parallelism:    4,
			Policy:         optiflow.ConfinedRecovery(),
			Injector:       optiflow.FailWorker(20, 1),
			AccumulatorLog: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
