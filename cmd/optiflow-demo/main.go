// Command optiflow-demo is the interactive demonstration of optimistic
// recovery for iterative dataflows (§3 of the paper): choose the
// Connected Components or PageRank tab, pick the small hand-crafted
// graph or a larger Twitter-like graph, schedule worker failures, and
// watch the algorithms recover through compensation functions instead
// of checkpoints.
//
// Usage:
//
//	optiflow-demo                 # interactive shell
//	optiflow-demo -script "cc; fail 3 1; run; plots; quit"
//	optiflow-demo -no-color       # disable ANSI colors
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"optiflow/internal/cluster/proc"
	"optiflow/internal/demoapp"
	"optiflow/internal/supervise"
)

func main() {
	// When the coordinator re-executes this binary with the worker
	// environment set, it becomes a worker daemon and never returns
	// from here. Must run before flag parsing — children carry no args.
	proc.MaybeChildMode()

	noColor := flag.Bool("no-color", false, "disable ANSI colors in graph frames")
	script := flag.String("script", "", "semicolon-separated commands to run non-interactively")
	delay := flag.Duration("delay", 400*time.Millisecond, "frame delay during play (the demo slows down the small graph)")
	clusterMode := flag.String("cluster", "inproc",
		"cluster backend for demo runs: inproc (simulation) or proc (real worker processes)")
	flag.Parse()

	var factory supervise.ClusterFactory
	switch *clusterMode {
	case "", "inproc":
	case "proc":
		factory = proc.Provision
	default:
		fmt.Fprintf(os.Stderr, "unknown -cluster mode %q (want inproc or proc)\n", *clusterMode)
		os.Exit(2)
	}

	if *script != "" {
		sh := demoapp.NewShell(strings.NewReader(""), os.Stdout, !*noColor)
		sh.ClusterFactory = factory
		for _, cmd := range strings.Split(*script, ";") {
			cmd = strings.TrimSpace(cmd)
			if cmd == "" {
				continue
			}
			fmt.Printf("demo> %s\n", cmd)
			if !sh.Execute(cmd) {
				return
			}
		}
		return
	}

	sh := demoapp.NewShell(os.Stdin, os.Stdout, !*noColor)
	sh.ClusterFactory = factory
	sh.PlayDelay = *delay
	sh.Loop()
}
