// Command optiflow-vet lints the repository's Go sources for the
// invariants that keep optimistic recovery sound and the engine
// deterministic — checks go vet cannot express (see internal/srclint
// for the rule catalogue).
//
// Usage:
//
//	optiflow-vet ./...
//	optiflow-vet internal/... cmd/...
//
// It prints one finding per line in go-vet style and exits nonzero if
// any rule fired.
package main

import (
	"fmt"
	"os"

	"optiflow/internal/srclint"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "optiflow-vet: %v\n", err)
		os.Exit(2)
	}
	findings, err := srclint.Check(root, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optiflow-vet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "optiflow-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
