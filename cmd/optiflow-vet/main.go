// Command optiflow-vet lints the repository's Go sources for the
// invariants that keep optimistic recovery sound and the engine
// deterministic — checks go vet cannot express. It drives both lint
// layers behind one registry: the syntactic AST rules in
// internal/srclint and the typed CFG/dataflow analyses in
// internal/deepvet (see either package for the rule catalogue, or run
// with -catalogue).
//
// Usage:
//
//	optiflow-vet ./...
//	optiflow-vet internal/... cmd/...
//	optiflow-vet -rules poolescape,lockorder ./...
//	optiflow-vet -json ./...
//
// By default it prints one finding per line in go-vet style and exits
// nonzero if any rule fired; -json emits a machine-readable array for
// CI and editor integrations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"optiflow/internal/deepvet"
)

// jsonFinding is the machine-readable shape of one finding.
type jsonFinding struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	Rule   string `json:"rule"`
	Msg    string `json:"msg"`
}

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		rules     = flag.String("rules", "", "comma-separated rule names to run (default: all)")
		noTyped   = flag.Bool("no-typed", false, "skip the typed deepvet analyses (fast syntactic pass only)")
		catalogue = flag.Bool("catalogue", false, "print the rule catalogue and exit")
	)
	flag.Parse()

	if *catalogue {
		for _, r := range deepvet.Rules() {
			fmt.Printf("%-14s %-5s %s\n", r.Name, r.Layer, r.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "optiflow-vet: %v\n", err)
		os.Exit(2)
	}

	opts := deepvet.Options{NoTyped: *noTyped}
	if *rules != "" {
		for _, r := range strings.Split(*rules, ",") {
			if r = strings.TrimSpace(r); r != "" {
				opts.Rules = append(opts.Rules, r)
			}
		}
	}

	findings, err := deepvet.Check(root, patterns, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optiflow-vet: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
				Rule: f.Rule, Msg: f.Msg,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "optiflow-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "optiflow-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
