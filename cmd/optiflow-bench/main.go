// Command optiflow-bench regenerates every figure of the paper and the
// ablation experiments recorded in EXPERIMENTS.md, printing the same
// per-iteration series the demo GUI plots together with explicit
// shape checks (plummet at the failure iteration, elevated recovery
// messages, L1 spike, zero failure-free checkpoint overhead, ...).
//
// It doubles as the benchmark-artifact pipeline: with -gobench it runs
// the repo's `go test -bench` suites and writes a BENCH_*.json artifact
// (ns/op, B/op, allocs/op per benchmark) so every PR has a perf
// trajectory to compare against.
//
// Usage:
//
//	optiflow-bench                 # run everything
//	optiflow-bench -exp fig2       # one experiment (fig1a fig1b fig2 fig4 twitter overhead
//	                               #   recovery compensation bulkdelta als confined kmeans chaos)
//	optiflow-bench -chaos          # seeded chaos soak against the recovery supervisor
//	optiflow-bench -n 100000 -p 8  # scale the Twitter-like graph and parallelism
//	optiflow-bench -gobench 'BenchmarkEngine|BenchmarkTwitter' -benchtime 3x -json BENCH_PR2.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"optiflow/internal/benchart"
	"optiflow/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run, or 'all'")
	chaos := flag.Bool("chaos", false, "run the chaos soak (shorthand for -exp chaos): random boundary, mid-step and during-recovery failures against the supervised cluster, all policies, fixed seed matrix")
	n := flag.Int("n", 50000, "vertex count of the synthetic Twitter-like graph")
	p := flag.Int("p", 4, "parallelism (tasks and state partitions)")
	seed := flag.Int64("seed", 20150531, "generator seed")
	csvDir := flag.String("csv", "", "directory to export per-experiment CSV series into")
	svgDir := flag.String("svg", "", "directory to export figure SVGs into")
	gobench := flag.String("gobench", "", "run `go test -bench` with this regexp and emit a JSON artifact instead of the experiments")
	benchtime := flag.String("benchtime", "", "-benchtime passed through to go test (e.g. 3x, 1s)")
	jsonPath := flag.String("json", "BENCH.json", "artifact path for -gobench results")
	benchDir := flag.String("benchdir", ".", "comma-separated directories containing the benchmarked packages; results merge into one artifact")
	maxAllocs := flag.String("maxallocs", "", "comma-separated Benchmark=ceiling pairs; with -gobench, fail if a listed benchmark is missing or its allocs/op exceeds the ceiling")
	flag.Parse()

	if *gobench != "" {
		runGoBench(*benchDir, *gobench, *benchtime, *jsonPath, *maxAllocs)
		return
	}
	if *chaos {
		*exp = "chaos"
	}

	runner := experiments.NewRunner(experiments.Config{
		Parallelism: *p,
		TwitterSize: *n,
		Seed:        *seed,
	})

	var reports []*experiments.Report
	if *exp == "all" {
		all, err := runner.RunAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "optiflow-bench: %v\n", err)
			os.Exit(1)
		}
		reports = all
	} else {
		rep, err := runner.Run(*exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optiflow-bench: %v\n", err)
			os.Exit(1)
		}
		reports = []*experiments.Report{rep}
	}

	failed := 0
	for _, rep := range reports {
		fmt.Println(rep.Render())
		if !rep.Passed() {
			failed++
		}
		if *csvDir != "" {
			writeAll(*csvDir, rep.CSVs)
		}
		if *svgDir != "" {
			writeAll(*svgDir, rep.SVGs)
		}
	}
	fmt.Printf("experiments: %d run, %d with failing shape checks\n", len(reports), failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// runGoBench executes the Go benchmark suites — one `go test -bench`
// run per -benchdir entry, merged into a single artifact — and writes
// the committed perf artifact. The raw `go test` output streams to
// stdout so failures stay diagnosable in CI logs.
func runGoBench(dirs, bench, benchtime, jsonPath, maxAllocs string) {
	var results []benchart.Result
	for _, dir := range strings.Split(dirs, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		res, raw, err := benchart.RunGo(dir, bench, benchtime)
		fmt.Print(raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optiflow-bench: %s: %v\n", dir, err)
			os.Exit(1)
		}
		results = append(results, res...)
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "optiflow-bench: no benchmark results from %q\n", dirs)
		os.Exit(1)
	}
	art := benchart.Artifact{
		Pkg:       "optiflow",
		Bench:     bench,
		Benchtime: benchtime,
		Results:   results,
		Derived:   derivedRatios(results),
	}
	if err := benchart.WriteJSON(jsonPath, art); err != nil {
		fmt.Fprintf(os.Stderr, "optiflow-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", jsonPath, len(results))
	if err := enforceAllocCeilings(results, maxAllocs); err != nil {
		fmt.Fprintf(os.Stderr, "optiflow-bench: %v\n", err)
		os.Exit(1)
	}
}

// enforceAllocCeilings is the allocation-regression guard behind
// -maxallocs. A listed benchmark that is absent from the run fails the
// guard too: a renamed or filtered-out benchmark must not let the
// ceiling pass vacuously.
func enforceAllocCeilings(results []benchart.Result, spec string) error {
	if spec == "" {
		return nil
	}
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, limitStr, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("-maxallocs entry %q: want Benchmark=ceiling", pair)
		}
		limit, err := strconv.ParseInt(limitStr, 10, 64)
		if err != nil {
			return fmt.Errorf("-maxallocs entry %q: bad ceiling: %v", pair, err)
		}
		r, found := benchart.Find(results, name)
		if !found {
			return fmt.Errorf("-maxallocs: benchmark %q not present in this run", name)
		}
		if r.AllocsPerOp < 0 {
			return fmt.Errorf("-maxallocs: benchmark %q reported no allocation figures", name)
		}
		if r.AllocsPerOp > limit {
			return fmt.Errorf("allocation regression: %s allocated %d allocs/op, ceiling is %d", r.Name, r.AllocsPerOp, limit)
		}
		fmt.Printf("alloc guard: %s at %d allocs/op (ceiling %d)\n", r.Name, r.AllocsPerOp, limit)
	}
	return nil
}

// derivedRatios computes the headline speedups when the relevant
// benchmark pairs appear in the run, so the artifact records the claim
// (e.g. "async checkpointing cuts barrier stall N×") as a number.
func derivedRatios(results []benchart.Result) map[string]float64 {
	pairs := map[string][2]string{
		"barrier_stall_speedup_cc": {
			"BenchmarkCheckpointBarrier_CC_Sync", "BenchmarkCheckpointBarrier_CC_Async"},
		"barrier_stall_speedup_pagerank": {
			"BenchmarkCheckpointBarrier_PR_Sync", "BenchmarkCheckpointBarrier_PR_Async"},
		"barrier_stall_speedup_cc_incremental": {
			"BenchmarkCheckpointBarrier_CC_Incremental", "BenchmarkCheckpointBarrier_CC_AsyncIncremental"},
		"columnar_speedup_cc": {
			"BenchmarkTwitter_CC_Boxed", "BenchmarkTwitter_CC"},
		"columnar_speedup_pagerank": {
			"BenchmarkTwitter_PR_Boxed", "BenchmarkTwitter_PR"},
		// PR 10: raw columnar wire vs the gob fallback, micro (state and
		// adjacency payload encode/decode) and end-to-end (proc-mode CC
		// and PageRank with a per-superstep checkpoint).
		"wire_state_encode_speedup": {
			"BenchmarkWireEncodeState_Gob", "BenchmarkWireEncodeState_Raw"},
		"wire_state_decode_speedup": {
			"BenchmarkWireDecodeState_Gob", "BenchmarkWireDecodeState_Raw"},
		"wire_adj_encode_speedup": {
			"BenchmarkWireEncodeAdj_Gob", "BenchmarkWireEncodeAdj_Raw"},
		"wire_adj_decode_speedup": {
			"BenchmarkWireDecodeAdj_Gob", "BenchmarkWireDecodeAdj_Raw"},
		"proc_e2e_speedup_cc": {
			"BenchmarkProcCC_Gob", "BenchmarkProcCC_Raw"},
		"proc_e2e_speedup_pagerank": {
			"BenchmarkProcPageRank_Gob", "BenchmarkProcPageRank_Raw"},
	}
	allocPairs := map[string][2]string{
		"wire_state_encode_allocs_ratio": {
			"BenchmarkWireEncodeState_Gob", "BenchmarkWireEncodeState_Raw"},
		"wire_state_decode_allocs_ratio": {
			"BenchmarkWireDecodeState_Gob", "BenchmarkWireDecodeState_Raw"},
		"wire_adj_encode_allocs_ratio": {
			"BenchmarkWireEncodeAdj_Gob", "BenchmarkWireEncodeAdj_Raw"},
		"wire_adj_decode_allocs_ratio": {
			"BenchmarkWireDecodeAdj_Gob", "BenchmarkWireDecodeAdj_Raw"},
	}
	derived := make(map[string]float64)
	for name, p := range pairs {
		if r, ok := benchart.Ratio(results, p[0], p[1]); ok {
			derived[name] = r
		}
	}
	for name, p := range allocPairs {
		if r, ok := benchart.AllocRatio(results, p[0], p[1]); ok {
			derived[name] = r
		}
	}
	if len(derived) == 0 {
		return nil
	}
	return derived
}

func writeAll(dir string, files map[string]string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "optiflow-bench: %v\n", err)
		os.Exit(1)
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "optiflow-bench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
