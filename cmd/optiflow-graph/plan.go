package main

import (
	"fmt"
	"sort"

	"optiflow/internal/algo/als"
	"optiflow/internal/algo/cc"
	"optiflow/internal/algo/kmeans"
	"optiflow/internal/algo/pagerank"
	"optiflow/internal/dataflow"
	"optiflow/internal/graph"
	"optiflow/internal/graph/gen"
	"optiflow/internal/planlint"
	"optiflow/internal/vertexcentric"
)

// planBuilders maps the names accepted by `optiflow-graph plan -name`
// to constructors. Figure plans are the paper's Fig. 1 renderings with
// in-plan compensation operators; step plans are the per-superstep
// plans the algorithms actually execute, built on the demo graph (or a
// small synthetic input) so they can be rendered without any data.
var planBuilders = map[string]func(par int) *dataflow.Plan{
	"cc-figure":       func(int) *dataflow.Plan { return cc.FigurePlan() },
	"pagerank-figure": func(int) *dataflow.Plan { return pagerank.FigurePlan() },
	"cc-step": func(par int) *dataflow.Plan {
		g, _ := gen.Demo()
		return cc.New(g, par).StepPlan()
	},
	"cc-bulk-step": func(par int) *dataflow.Plan {
		g, _ := gen.Demo()
		return cc.NewBulk(g, par).StepPlan()
	},
	"pagerank-step": func(par int) *dataflow.Plan {
		g, _ := gen.DemoDirected()
		return pagerank.New(g, par, 0.85, pagerank.UniformRedistribution).StepPlan()
	},
	"kmeans-step": func(par int) *dataflow.Plan {
		data := []kmeans.Point{{0, 0}, {0, 1}, {1, 0}, {10, 10}, {10, 11}, {11, 10}}
		km, err := kmeans.New(data, kmeans.Config{K: 2, Parallelism: par})
		if err != nil {
			fail("kmeans: %v", err)
		}
		return km.StepPlan()
	},
	"als-solve-users": func(par int) *dataflow.Plan {
		return als.New(als.SyntheticRatings(12, 9, 2, 0.5, 0.01, 7),
			als.Config{Rank: 2, Parallelism: par}).HalfStepPlan(true)
	},
	"als-solve-items": func(par int) *dataflow.Plan {
		return als.New(als.SyntheticRatings(12, 9, 2, 0.5, 0.01, 7),
			als.Config{Rank: 2, Parallelism: par}).HalfStepPlan(false)
	},
	"vertexcentric-step": func(par int) *dataflow.Plan {
		g, _ := gen.Demo()
		prog := vertexcentric.Program[uint64, uint64]{
			Name: "vc-render",
			Init: func(v graph.VertexID) (uint64, []vertexcentric.Outbound[uint64]) {
				return uint64(v), nil
			},
			Compute: func(v graph.VertexID, st uint64, msgs []uint64, send func(graph.VertexID, uint64)) (uint64, bool) {
				return st, false
			},
			Compensate: func(v graph.VertexID) uint64 { return uint64(v) },
		}
		return vertexcentric.NewRunner(prog, g, par).StepPlan()
	},
}

func planNames() []string {
	names := make([]string, 0, len(planBuilders))
	for n := range planBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// renderPlan builds the named plan and renders it through planlint so
// the output carries any static-analysis diagnostics inline (annotated
// operators plus a trailing report in explain format, red nodes in
// dot).
func renderPlan(name, format string, par int) (string, error) {
	build, ok := planBuilders[name]
	if !ok {
		return "", fmt.Errorf("unknown plan %q (known: %v)", name, planNames())
	}
	p := build(par)
	switch format {
	case "explain":
		return planlint.Explain(p), nil
	case "dot":
		return planlint.Dot(p), nil
	default:
		return "", fmt.Errorf("unknown format %q (want explain or dot)", format)
	}
}
