// Command optiflow-graph generates, inspects and converts the graphs
// used by the demonstration and benchmarks, and renders the dataflow
// plans the algorithms build.
//
// Usage:
//
//	optiflow-graph gen -type twitter -n 50000 -seed 7 > twitter.el
//	optiflow-graph stats -p 4 < twitter.el
//	optiflow-graph stats -type grid -n 30 -m 30
//	optiflow-graph convert -directed < raw.el > normalised.el
//	optiflow-graph plan -name cc-figure
//	optiflow-graph plan -name pagerank-step -format dot
//	optiflow-graph plan -list
package main

import (
	"flag"
	"fmt"
	"os"

	"optiflow/internal/graph"
	"optiflow/internal/graphtool"
)

func main() {
	if len(os.Args) < 2 {
		fail("usage: optiflow-graph gen|stats|convert|plan [flags]")
	}
	cmd, args := os.Args[1], os.Args[2:]

	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	typ := fs.String("type", "", "graph type to generate (demo, twitter, ba, rmat, er, grid, chain, star, components)")
	n := fs.Int("n", 1000, "primary size (vertices; rows for grid)")
	m := fs.Int("m", 0, "secondary size (BA edges/vertex, grid columns, RMAT edge factor, component count)")
	p := fs.Float64("prob", 0, "edge probability (er, components)")
	seed := fs.Int64("seed", 20150531, "generator seed")
	directed := fs.Bool("directed", false, "treat/generate the graph as directed")
	par := fs.Int("p", 4, "parallelism for partition balance (stats); plan parallelism (plan)")
	name := fs.String("name", "", "plan to render (plan; see -list)")
	format := fs.String("format", "explain", "plan output format: explain or dot")
	list := fs.Bool("list", false, "list available plan names (plan)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	switch cmd {
	case "gen":
		if *typ == "" {
			fail("gen: -type is required")
		}
		g, err := graphtool.Generate(graphtool.GenSpec{
			Type: *typ, N: *n, M: *m, P: *p, Seed: *seed, Directed: *directed,
		})
		if err != nil {
			fail("%v", err)
		}
		if err := graph.WriteEdgeList(os.Stdout, g); err != nil {
			fail("writing edge list: %v", err)
		}

	case "stats":
		var g *graph.Graph
		var err error
		if *typ != "" {
			g, err = graphtool.Generate(graphtool.GenSpec{
				Type: *typ, N: *n, M: *m, P: *p, Seed: *seed, Directed: *directed,
			})
		} else {
			g, err = graph.ReadEdgeList(os.Stdin, *directed)
		}
		if err != nil {
			fail("%v", err)
		}
		fmt.Print(graphtool.Stats(g, *par))

	case "convert":
		msg, err := graphtool.Convert(os.Stdin, os.Stdout, *directed)
		if err != nil {
			fail("%v", err)
		}
		fmt.Fprintln(os.Stderr, msg)

	case "plan":
		if *list {
			for _, n := range planNames() {
				fmt.Println(n)
			}
			return
		}
		if *name == "" {
			fail("plan: -name is required (or -list to see the catalogue)")
		}
		out, err := renderPlan(*name, *format, *par)
		if err != nil {
			fail("%v", err)
		}
		fmt.Print(out)

	default:
		fail("unknown command %q (want gen, stats, convert or plan)", cmd)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "optiflow-graph: "+format+"\n", args...)
	os.Exit(1)
}
