package main

import (
	"strings"
	"testing"
)

func TestRenderPlanAllNamesAllFormats(t *testing.T) {
	for _, name := range planNames() {
		for _, format := range []string{"explain", "dot"} {
			out, err := renderPlan(name, format, 2)
			if err != nil {
				t.Fatalf("renderPlan(%s, %s): %v", name, format, err)
			}
			if out == "" {
				t.Fatalf("renderPlan(%s, %s): empty output", name, format)
			}
			if format == "dot" && !strings.HasPrefix(out, "digraph") {
				t.Fatalf("renderPlan(%s, dot) is not a digraph:\n%s", name, out)
			}
		}
	}
}

func TestRenderPlanCarriesDiagnostics(t *testing.T) {
	// Step plans declare external compensation; the Info diagnostic must
	// surface in the rendered output so the tool is a lint viewer too.
	out, err := renderPlan("pagerank-step", "explain", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "comp-external") {
		t.Fatalf("explain output missing comp-external diagnostic:\n%s", out)
	}
}

func TestRenderPlanErrors(t *testing.T) {
	if _, err := renderPlan("no-such-plan", "explain", 2); err == nil {
		t.Fatal("unknown plan name did not error")
	}
	if _, err := renderPlan("cc-figure", "svg", 2); err == nil {
		t.Fatal("unknown format did not error")
	}
}
