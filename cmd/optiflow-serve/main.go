// Command optiflow-serve hosts the demonstration in a browser — the
// closest substitute for the paper's GUI: pick the Connected Components
// or PageRank tab, choose the input graph, schedule worker failures,
// run, and step back and forth through the per-iteration frames with
// the statistics plots rendered alongside.
//
// Usage:
//
//	optiflow-serve -addr localhost:8080
//	# then open http://localhost:8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"optiflow/internal/httpui"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	flag.Parse()

	fmt.Printf("optiflow demo at http://%s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, httpui.NewServer().Handler()))
}
