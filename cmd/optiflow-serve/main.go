// Command optiflow-serve hosts the demonstration in a browser — the
// closest substitute for the paper's GUI: pick the Connected Components
// or PageRank tab, choose the input graph, schedule worker failures,
// run, and step back and forth through the per-iteration frames with
// the statistics plots rendered alongside.
//
// Usage:
//
//	optiflow-serve -addr localhost:8080
//	# then open http://localhost:8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"optiflow/internal/cluster/proc"
	"optiflow/internal/httpui"
)

func main() {
	// When the coordinator re-executes this binary with the worker
	// environment set, it becomes a worker daemon and never returns
	// from here. Must run before flag parsing — children carry no args.
	proc.MaybeChildMode()

	addr := flag.String("addr", "localhost:8080", "listen address")
	clusterMode := flag.String("cluster", "inproc",
		"cluster backend for demo runs: inproc (simulation) or proc (real worker processes)")
	flag.Parse()

	srv := httpui.NewServer()
	switch *clusterMode {
	case "", "inproc":
	case "proc":
		srv.NewCluster = proc.Provision
	default:
		log.Fatalf("unknown -cluster mode %q (want inproc or proc)", *clusterMode)
	}

	fmt.Printf("optiflow demo at http://%s (cluster=%s)\n", *addr, *clusterMode)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
