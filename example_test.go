package optiflow_test

import (
	"fmt"
	"math"
	"sort"

	"optiflow"
)

// The headline behaviour: Connected Components over the paper's demo
// graph recovers from a mid-run worker failure through the
// fix-components compensation function and still produces the exact
// components — without a single checkpoint.
func Example_optimisticRecovery() {
	g, _ := optiflow.DemoGraph()

	res, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{
		Parallelism: 4,
		Policy:      optiflow.OptimisticRecovery(),
		Injector:    optiflow.FailWorker(2, 1), // worker 1 dies in superstep 3
	})
	if err != nil {
		panic(err)
	}

	components := map[optiflow.VertexID][]optiflow.VertexID{}
	for v, c := range res.Components {
		components[c] = append(components[c], v)
	}
	var roots []optiflow.VertexID
	for c := range components {
		roots = append(roots, c)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	fmt.Printf("failures survived: %d, checkpoints written: %d\n", res.Failures, res.Overhead.Checkpoints)
	for _, c := range roots {
		members := components[c]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		fmt.Printf("component %d: %v\n", c, members)
	}
	// Output:
	// failures survived: 1, checkpoints written: 0
	// component 1: [1 2 3 4 5 6 7]
	// component 8: [8 9 10 11 12]
	// component 13: [13 14 15 16]
}

// PageRank's fix-ranks compensation keeps the rank vector a probability
// distribution across a failure, so the bulk iteration converges to the
// true ranks.
func Example_pageRankCompensation() {
	g, _ := optiflow.DemoGraphDirected()

	res, err := optiflow.PageRank(g, optiflow.PROptions{
		Parallelism:   4,
		MaxIterations: 100,
		Epsilon:       1e-12,
		Compensation:  optiflow.FixRanks,
		Injector:      optiflow.FailWorker(4, 1),
	})
	if err != nil {
		panic(err)
	}

	sum := 0.0
	for _, r := range res.Ranks {
		sum += r
	}
	truth := optiflow.TruePageRank(g, 0.85)
	maxErr := 0.0
	for v, want := range truth {
		maxErr = math.Max(maxErr, math.Abs(res.Ranks[v]-want))
	}
	fmt.Printf("rank mass: %.6f\n", sum)
	fmt.Printf("matches sequential power iteration: %v\n", maxErr < 1e-9)
	// Output:
	// rank mass: 1.000000
	// matches sequential power iteration: true
}

// The dataflow engine is usable standalone: a word count with a hash
// shuffle in a few lines.
func Example_dataflowEngine() {
	words := []string{"all", "roads", "lead", "to", "rome", "all", "roads"}
	hash := func(r any) uint64 {
		var h uint64 = 14695981039346656037
		for _, c := range []byte(r.(string)) {
			h = (h ^ uint64(c)) * 1099511628211
		}
		return h
	}

	plan := optiflow.NewPlan("wordcount")
	type wc struct {
		word string
		n    int
	}
	var results []wc
	plan.Source("words", func(part, nparts int, emit optiflow.Emit) error {
		for i := part; i < len(words); i += nparts {
			emit(words[i])
		}
		return nil
	}).ReduceBy("count", hash, func(_ uint64, vals []any, emit optiflow.Emit) {
		emit(wc{vals[0].(string), len(vals)})
	}).Sink("collect", func(_ int, rec any) error {
		results = append(results, rec.(wc)) // single-partition sink below
		return nil
	})

	if _, err := (&optiflow.Engine{Parallelism: 1}).Run(plan); err != nil {
		panic(err)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].n != results[j].n {
			return results[i].n > results[j].n
		}
		return results[i].word < results[j].word
	})
	for _, r := range results {
		fmt.Printf("%s: %d\n", r.word, r.n)
	}
	// Output:
	// all: 2
	// roads: 2
	// lead: 1
	// rome: 1
	// to: 1
}

// Shortest paths on the vertex-centric layer: a failure mid-run is
// absorbed by resetting lost distances to their initial values.
func Example_shortestPaths() {
	g := optiflow.GridGraph(4, 4)
	dist, err := optiflow.ShortestPaths(g, 0, optiflow.VertexProgramOptions{
		Parallelism: 2,
		Injector:    optiflow.FailWorker(1, 1),
	})
	if err != nil {
		panic(err)
	}
	// Manhattan distances from the corner of a grid.
	fmt.Println(dist[0], dist[5], dist[15])
	// Output:
	// 0 2 6
}
