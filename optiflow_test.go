package optiflow_test

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"optiflow"
)

// The facade tests exercise the library exactly as a downstream user
// would: only through the public package.

func TestQuickstartFlow(t *testing.T) {
	g, layout := optiflow.DemoGraph()
	if g.NumVertices() != 16 || len(layout) != 16 {
		t.Fatal("demo graph changed")
	}
	res, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{
		Parallelism: 4,
		Policy:      optiflow.OptimisticRecovery(),
		Injector:    optiflow.FailWorker(2, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := optiflow.TrueComponents(g)
	for v, want := range truth {
		if res.Components[v] != want {
			t.Fatalf("vertex %d wrong component", v)
		}
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d", res.Failures)
	}
}

func TestPageRankThroughFacade(t *testing.T) {
	g, _ := optiflow.DemoGraphDirected()
	res, err := optiflow.PageRank(g, optiflow.PROptions{
		Parallelism:   4,
		MaxIterations: 100,
		Epsilon:       1e-12,
		Compensation:  optiflow.FixRanks,
		Injector:      optiflow.FailWorker(4, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := optiflow.TruePageRank(g, 0.85)
	for v, want := range truth {
		if math.Abs(res.Ranks[v]-want) > 1e-9 {
			t.Fatalf("vertex %d: %g vs %g", v, res.Ranks[v], want)
		}
	}
}

func TestShortestPathsThroughFacade(t *testing.T) {
	g := optiflow.GridGraph(5, 5)
	dist, err := optiflow.ShortestPaths(g, 0, optiflow.VertexProgramOptions{
		Parallelism: 2,
		Injector:    optiflow.FailWorker(2, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := optiflow.TrueShortestPaths(g, 0)
	for v, want := range truth {
		if dist[v] != want {
			t.Fatalf("vertex %d: %g vs %g", v, dist[v], want)
		}
	}
}

func TestGeneratorsThroughFacade(t *testing.T) {
	if g := optiflow.TwitterGraph(500, 1); g.NumVertices() != 500 || !g.Directed() {
		t.Fatal("twitter generator wrong")
	}
	if g := optiflow.BarabasiAlbertGraph(100, 2, 1, false); g.NumVertices() != 100 {
		t.Fatal("BA generator wrong")
	}
	if g := optiflow.RMATGraph(6, 4, 1, true); g.NumVertices() != 64 {
		t.Fatal("RMAT generator wrong")
	}
	if g := optiflow.ErdosRenyiGraph(50, 0.1, 1, false); g.NumVertices() != 50 {
		t.Fatal("ER generator wrong")
	}
	if g := optiflow.GridGraph(3, 4); g.NumEdges() != 3*3+2*4 {
		t.Fatal("grid generator wrong")
	}
}

func TestEdgeListThroughFacade(t *testing.T) {
	g := optiflow.NewGraphBuilder(true).AddEdge(1, 2).AddWeightedEdge(2, 3, 4).Build()
	var buf bytes.Buffer
	if err := optiflow.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := optiflow.ReadEdgeList(bytes.NewReader(buf.Bytes()), true)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 2 {
		t.Fatalf("roundtrip edges = %d", back.NumEdges())
	}
}

func TestCheckpointPolicyThroughFacade(t *testing.T) {
	g, _ := optiflow.DemoGraph()
	store := optiflow.NewMemoryCheckpointStore()
	res, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{
		Parallelism: 4,
		Policy:      optiflow.CheckpointRecovery(1, store),
		Injector:    optiflow.FailWorker(2, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead.BytesWritten == 0 {
		t.Fatal("checkpoint overhead not reported")
	}

	// Disk-backed checkpoints through the facade, too.
	disk, err := optiflow.NewDiskCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dg, _ := optiflow.DemoGraphDirected()
	pres, err := optiflow.PageRank(dg, optiflow.PROptions{
		Parallelism:   4,
		MaxIterations: 10,
		Policy:        optiflow.CheckpointRecovery(2, disk),
		Injector:      optiflow.FailWorker(5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pres.Overhead.Checkpoints == 0 || pres.Ticks <= pres.Supersteps {
		t.Fatalf("disk rollback did not happen: %+v", pres.Overhead)
	}
}

func TestAsyncCheckpointPolicyThroughFacade(t *testing.T) {
	g, _ := optiflow.DemoGraph()
	failureFree, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	truth := failureFree.Components
	for _, mk := range []func() optiflow.Policy{
		func() optiflow.Policy {
			return optiflow.AsyncCheckpointRecovery(1, optiflow.NewMemoryCheckpointStore(), 4)
		},
		func() optiflow.Policy {
			return optiflow.AsyncIncrementalCheckpointRecovery(1, optiflow.NewMemoryCheckpointStore(), 4)
		},
	} {
		res, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{
			Parallelism: 4,
			Policy:      mk(),
			Injector:    optiflow.FailWorker(2, 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		for v, c := range truth {
			if res.Components[v] != c {
				t.Fatalf("vertex %d: component %d, want %d", v, res.Components[v], c)
			}
		}
		if res.Ticks <= res.Supersteps {
			t.Fatalf("rollback did not happen: ticks %d supersteps %d", res.Ticks, res.Supersteps)
		}
	}
}

func TestCustomPlanThroughFacade(t *testing.T) {
	// Build and run a word-count-style plan directly on the engine —
	// the public dataflow API must be usable standalone.
	plan := optiflow.NewPlan("wordcount")
	words := []string{"roads", "lead", "to", "rome", "all", "roads", "to", "rome"}
	src := plan.Source("words", func(part, nparts int, emit optiflow.Emit) error {
		for i := part; i < len(words); i += nparts {
			emit(words[i])
		}
		return nil
	})
	hash := func(r any) uint64 {
		var h uint64 = 14695981039346656037
		for _, c := range []byte(r.(string)) {
			h = (h ^ uint64(c)) * 1099511628211
		}
		return h
	}
	var mu sync.Mutex
	counts := map[string]int{}
	src.ReduceBy("count", hash, func(_ uint64, vals []any, emit optiflow.Emit) {
		mu.Lock()
		counts[vals[0].(string)] = len(vals)
		mu.Unlock()
	}).Sink("out", func(int, any) error { return nil })

	eng := &optiflow.Engine{Parallelism: 4}
	stats, err := eng.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if counts["roads"] != 2 || counts["to"] != 2 || counts["all"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if stats.Records("words->count") != int64(len(words)) {
		t.Fatalf("edge count = %d", stats.Records("words->count"))
	}
}

func TestFigurePlansThroughFacade(t *testing.T) {
	cc := optiflow.CCFigurePlan().Explain()
	pr := optiflow.PRFigurePlan().Explain()
	if !strings.Contains(cc, "fix-components") || !strings.Contains(pr, "fix-ranks") {
		t.Fatal("figure plans missing compensation")
	}
}

func TestRandomFailuresInjectorThroughFacade(t *testing.T) {
	g := optiflow.TwitterGraph(300, 2)
	res, err := optiflow.PageRank(g, optiflow.PROptions{
		Parallelism:   4,
		MaxIterations: 20,
		Injector:      optiflow.RandomFailures(0.3, 7, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures > 2 {
		t.Fatalf("max failures exceeded: %d", res.Failures)
	}
	sum := 0.0
	for _, r := range res.Ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rank sum = %g", sum)
	}
}

func TestSupervisedChaosThroughFacade(t *testing.T) {
	g, _ := optiflow.DemoGraph()
	truth := optiflow.TrueComponents(g)
	res, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{
		Parallelism: 4,
		Policy:      optiflow.NoRecovery(),
		Injector:    optiflow.ChaosFailures(3).WithMaxFailures(2).Until(4),
		Supervise:   &optiflow.SuperviseConfig{Spares: 1, FailureBudget: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range truth {
		if res.Components[v] != want {
			t.Fatalf("vertex %d wrong component", v)
		}
	}
	if res.Failures > 0 && res.TotalEscalations == 0 {
		t.Fatalf("failures=%d but no escalations under the none policy", res.Failures)
	}
}

func TestClusterOptionsThroughFacade(t *testing.T) {
	cl := optiflow.NewCluster(4, 8, optiflow.WithSpares(1), optiflow.WithEventCap(4))
	if cl.Spares() != 1 {
		t.Fatalf("spares = %d", cl.Spares())
	}
	if lost := cl.Fail(1); len(lost) == 0 {
		t.Fatal("failing worker 1 lost no partitions")
	}
	ws, _, err := cl.AcquireN(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 {
		t.Fatalf("acquired %v, want a single spare", ws)
	}
	for i := 0; i < 10; i++ {
		cl.Note("noise", fmt.Sprintf("event %d", i), nil)
	}
	if n := len(cl.Events()); n != 4 {
		t.Fatalf("event log = %d entries, want capped at 4", n)
	}
	if cl.DroppedEvents() == 0 {
		t.Fatal("no dropped events counted")
	}
}

func TestKMeansThroughFacade(t *testing.T) {
	data := optiflow.SyntheticBlobs(400, 4, 3, 2, 9)
	res, err := optiflow.KMeansCluster(data, optiflow.KMeansOptions{
		Config:   optiflow.KMeansConfig{K: 4, Parallelism: 4, Seed: 2},
		Injector: optiflow.FailWorker(1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d", res.Failures)
	}
	noiseFloor := 400.0 * 3 * 4
	if cost := res.Model.Cost(); cost > noiseFloor*2 {
		t.Fatalf("cost %.1f above noise floor", cost)
	}
}

func TestVertexProgramThroughFacade(t *testing.T) {
	g := optiflow.GridGraph(6, 6)
	// Min-ID propagation: a CC re-implementation in a dozen lines.
	prog := optiflow.VertexProgram[uint64, uint64]{
		Name: "min-id",
		Init: func(v optiflow.VertexID) (uint64, []optiflow.VertexMessage[uint64]) {
			var out []optiflow.VertexMessage[uint64]
			for _, n := range g.OutNeighbors(v) {
				out = append(out, optiflow.VertexMessage[uint64]{To: n, Msg: uint64(v)})
			}
			return uint64(v), out
		},
		Compute: func(v optiflow.VertexID, st uint64, msgs []uint64, send func(optiflow.VertexID, uint64)) (uint64, bool) {
			best := st
			for _, m := range msgs {
				if m < best {
					best = m
				}
			}
			if best >= st {
				return st, false
			}
			for _, n := range g.OutNeighbors(v) {
				send(n, best)
			}
			return best, true
		},
		Combine:    func(a, b uint64) uint64 { return min(a, b) },
		Compensate: func(v optiflow.VertexID) uint64 { return uint64(v) },
		Reactivate: func(v optiflow.VertexID, st uint64, send func(optiflow.VertexID, uint64)) {
			for _, n := range g.OutNeighbors(v) {
				send(n, st)
			}
		},
	}
	for _, tc := range []struct {
		name string
		opts optiflow.VertexProgramOptions
	}{
		{"optimistic", optiflow.VertexProgramOptions{Parallelism: 4, Injector: optiflow.FailWorker(2, 0)}},
		{"confined", optiflow.VertexProgramOptions{
			Parallelism: 4, Injector: optiflow.FailWorker(2, 0),
			Policy: optiflow.ConfinedRecovery(), AccumulatorLog: true,
		}},
	} {
		res, err := optiflow.RunVertexProgram(prog, g, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for v, st := range res.States {
			if st != 0 {
				t.Fatalf("%s: vertex %d ended with %d, want 0 (connected grid)", tc.name, v, st)
			}
		}
	}
}

func TestDeltaCheckpointThroughFacade(t *testing.T) {
	g := optiflow.GridGraph(8, 8)
	res, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{
		Parallelism: 4,
		Policy:      optiflow.DeltaCheckpointRecovery(1, optiflow.NewMemoryCheckpointLogStore()),
		Injector:    optiflow.FailWorker(5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := optiflow.TrueComponents(g)
	for v, want := range truth {
		if res.Components[v] != want {
			t.Fatalf("vertex %d wrong", v)
		}
	}
	if res.Overhead.BytesWritten == 0 {
		t.Fatal("delta log wrote nothing")
	}
}

func TestCompressedStoreThroughFacade(t *testing.T) {
	g, _ := optiflow.DemoGraph()
	store := optiflow.CompressedCheckpointStore(optiflow.NewMemoryCheckpointStore())
	res, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{
		Parallelism: 4,
		Policy:      optiflow.CheckpointRecovery(1, store),
		Injector:    optiflow.FailWorker(2, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := optiflow.TrueComponents(g)
	for v, want := range truth {
		if res.Components[v] != want {
			t.Fatalf("vertex %d wrong after compressed rollback", v)
		}
	}
}

func TestBulkCCThroughFacade(t *testing.T) {
	g, _ := optiflow.DemoGraph()
	bulk, err := optiflow.ConnectedComponentsBulk(g, optiflow.CCOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	delta, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range delta.Components {
		if bulk.Components[v] != want {
			t.Fatalf("bulk and delta disagree at %d", v)
		}
	}
}

// customJob is a user-defined iterative job driven entirely through the
// public facade: its state is a counter vector partitioned over
// workers; compensation re-zeroes lost partitions and the fixpoint
// (counting to a bound) still completes.
type customJob struct {
	parts  []int
	bound  int
	resets int
}

func (c *customJob) Name() string { return "custom-counter" }

func (c *customJob) SnapshotTo(buf *bytes.Buffer) error {
	for _, v := range c.parts {
		fmt.Fprintf(buf, "%d ", v)
	}
	return nil
}

func (c *customJob) RestoreFrom(data []byte) error {
	vals := strings.Fields(string(data))
	for i := range c.parts {
		fmt.Sscanf(vals[i], "%d", &c.parts[i])
	}
	return nil
}

func (c *customJob) ClearPartitions(parts []int) {
	for _, p := range parts {
		c.parts[p] = 0
	}
}

func (c *customJob) Compensate(lost []int) error { return nil } // zero is a valid restart point

func (c *customJob) ResetToInitial() error {
	for i := range c.parts {
		c.parts[i] = 0
	}
	c.resets++
	return nil
}

func (c *customJob) step(*optiflow.LoopContext) (optiflow.StepStats, error) {
	moved := int64(0)
	for i := range c.parts {
		if c.parts[i] < c.bound {
			c.parts[i]++
			moved++
		}
	}
	return optiflow.StepStats{Updates: moved}, nil
}

func (c *customJob) done() bool {
	for _, v := range c.parts {
		if v < c.bound {
			return false
		}
	}
	return true
}

func TestCustomLoopThroughFacade(t *testing.T) {
	job := &customJob{parts: make([]int, 4), bound: 6}
	loop := &optiflow.Loop{
		Name:     job.Name(),
		Step:     job.step,
		Done:     func(int) bool { return job.done() },
		Job:      job,
		Policy:   optiflow.OptimisticRecovery(),
		Cluster:  optiflow.NewCluster(4, 4),
		Injector: optiflow.FailWorker(3, 1),
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d", res.Failures)
	}
	// The lost partition was re-zeroed mid-run and counted back up: the
	// fixpoint still completes with every partition at the bound.
	for p, v := range job.parts {
		if v != 6 {
			t.Fatalf("partition %d ended at %d", p, v)
		}
	}
	// The failed partition costs extra ticks.
	if res.Ticks <= 6 {
		t.Fatalf("ticks = %d, want > 6 (recovery work)", res.Ticks)
	}
}
