// The Figure 2/3 scenario of the paper: Connected Components on the
// demo graph with failures in iterations 1 and 3, comparing the
// statistics against a failure-free run — the plummet in the
// converged-vertices series and the elevated message counts after each
// failure are the signatures the demo GUI shows attendees.
package main

import (
	"fmt"
	"log"

	"optiflow"
)

func run(name string, injector optiflow.Injector, truth map[optiflow.VertexID]optiflow.VertexID) ([]int64, error) {
	g, _ := optiflow.DemoGraph()
	var messages []int64
	res, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{
		Parallelism: 4,
		Policy:      optiflow.OptimisticRecovery(),
		Injector:    injector,
		OnSample:    func(s optiflow.Sample) { messages = append(messages, s.Stats.Messages) },
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("%-14s: %d supersteps, %d failures, messages per iteration %v\n",
		name, res.Supersteps, res.Failures, messages)
	for v, want := range truth {
		if res.Components[v] != want {
			return nil, fmt.Errorf("%s: wrong component for vertex %d", name, v)
		}
	}
	return messages, nil
}

func main() {
	g, _ := optiflow.DemoGraph()
	truth := optiflow.TrueComponents(g)

	free, err := run("failure-free", optiflow.NoFailures(), truth)
	if err != nil {
		log.Fatal(err)
	}
	withFailures, err := run("with failures", optiflow.ScriptedFailures(map[int][]int{0: {0}, 2: {1}}), truth)
	if err != nil {
		log.Fatal(err)
	}

	var extra int64
	for i, m := range withFailures {
		if i < len(free) {
			extra += m - free[i]
		} else {
			extra += m
		}
	}
	fmt.Printf("\nrecovery effort: %d extra messages versus the failure-free run\n", extra)
	fmt.Println("both runs converged to the identical (correct) components — no checkpoints were taken")
}
