// The "larger graph derived from real-world data" scenario (§3.1): a
// synthetic power-law stand-in for the Twitter follower snapshot, run
// at configurable scale under all recovery policies with a mid-run
// failure, comparing failure-free overhead and recovery cost — the
// trade-off the paper's optimistic mechanism wins on.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"optiflow"
)

func main() {
	n := flag.Int("n", 50000, "vertex count of the synthetic Twitter-like graph")
	p := flag.Int("p", 4, "parallelism")
	flag.Parse()

	fmt.Printf("generating Twitter-like graph: %d vertices...\n", *n)
	g := optiflow.TwitterGraph(*n, 20150531)
	fmt.Printf("graph: %v\n\n", g)

	store := optiflow.NewMemoryCheckpointStore()
	policies := []struct {
		name   string
		policy optiflow.Policy
	}{
		{"optimistic (compensation)", optiflow.OptimisticRecovery()},
		{"checkpoint every 2 iters", optiflow.CheckpointRecovery(2, store)},
		{"restart from scratch", optiflow.RestartRecovery()},
	}

	truth := optiflow.TruePageRank(g, 0.85)
	fmt.Printf("%-28s  %10s  %10s  %12s  %10s\n", "policy", "attempts", "failures", "wall time", "correct")
	for _, pc := range policies {
		start := time.Now()
		res, err := optiflow.PageRank(g, optiflow.PROptions{
			Parallelism:   *p,
			MaxIterations: 100,
			Epsilon:       1e-9,
			Policy:        pc.policy,
			Injector:      optiflow.FailWorker(5, 1),
		})
		if err != nil {
			log.Fatalf("%s: %v", pc.name, err)
		}
		maxErr := 0.0
		for v, r := range res.Ranks {
			if d := r - truth[v]; d > maxErr || -d > maxErr {
				maxErr = max(maxErr, max(d, -d))
			}
		}
		fmt.Printf("%-28s  %10d  %10d  %12v  %10v\n",
			pc.name, res.Ticks, res.Failures, time.Since(start).Round(time.Millisecond), maxErr < 1e-6)
	}

	fmt.Println("\nconnected components on the same graph (undirected view), failure at iteration 2:")
	// Re-read the directed follower edges as undirected, as the demo
	// does with its snapshot.
	und := optiflow.NewGraphBuilder(false)
	for _, v := range g.Vertices() {
		for _, w := range g.OutNeighbors(v) {
			und.AddEdge(v, w)
		}
	}
	ug := und.Build()
	res, err := optiflow.ConnectedComponents(ug, optiflow.CCOptions{
		Parallelism: *p,
		Policy:      optiflow.OptimisticRecovery(),
		Injector:    optiflow.FailWorker(1, 2),
	})
	if err != nil {
		log.Fatal(err)
	}
	want := optiflow.TrueComponents(ug)
	ok := true
	for v, c := range want {
		if res.Components[v] != c {
			ok = false
			break
		}
	}
	fmt.Printf("converged in %d supersteps (%d failures), correct=%v\n", res.Supersteps, res.Failures, ok)
}
