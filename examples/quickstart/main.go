// Quickstart: run Connected Components on the paper's demo graph, kill
// a worker mid-run, and watch optimistic recovery converge to the
// correct result anyway — in about twenty lines of public API.
package main

import (
	"fmt"
	"log"

	"optiflow"
)

func main() {
	// The small hand-crafted graph of the demonstration: 16 vertices,
	// three connected components.
	g, _ := optiflow.DemoGraph()

	// Kill worker 1 during the third superstep. Its state partitions
	// vanish; the fix-components compensation function restores them.
	res, err := optiflow.ConnectedComponents(g, optiflow.CCOptions{
		Parallelism: 4,
		Policy:      optiflow.OptimisticRecovery(),
		Injector:    optiflow.FailWorker(2, 1),
		OnSample: func(s optiflow.Sample) {
			line := fmt.Sprintf("iteration %d: %d messages, %d label updates",
				s.Tick+1, s.Stats.Messages, s.Stats.Updates)
			if s.Failed() {
				line += fmt.Sprintf("  ⚡ workers %v failed — %s", s.FailedWorkers, s.Recovery)
			}
			fmt.Println(line)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nconverged after %d supersteps (%d attempts, %d failures)\n",
		res.Supersteps, res.Ticks, res.Failures)

	// Verify against the union-find ground truth.
	truth := optiflow.TrueComponents(g)
	correct := true
	for v, want := range truth {
		if res.Components[v] != want {
			correct = false
			fmt.Printf("MISMATCH at vertex %d: got %d want %d\n", v, res.Components[v], want)
		}
	}
	fmt.Printf("result correct despite the failure: %v\n", correct)

	components := make(map[optiflow.VertexID][]optiflow.VertexID)
	for v, c := range res.Components {
		components[c] = append(components[c], v)
	}
	fmt.Printf("found %d connected components\n", len(components))
}
