// Extension example: optimistic recovery for matrix factorization —
// the third algorithm class of the underlying CIKM 2013 work. ALS
// trains a low-rank model on a synthetic rating matrix; a worker
// failure destroys part of both factor matrices mid-training; the
// compensation function re-initializes the lost factor vectors with
// seeded random values, and training reconverges to the noise floor
// without any checkpoint.
package main

import (
	"fmt"
	"log"
	"strings"

	"optiflow"
)

func main() {
	// Rank-5 ground truth, 20% of entries observed, noise sigma 0.02.
	ratings := optiflow.SyntheticRatings(300, 200, 5, 0.2, 0.02, 42)
	fmt.Printf("synthetic rating matrix: %d users x %d items, %d observed ratings\n\n",
		ratings.NumUsers(), ratings.NumItems(), ratings.NumRatings())

	res, err := optiflow.ALSFactorize(ratings, optiflow.ALSOptions{
		Config:        optiflow.ALSConfig{Rank: 5, Lambda: 0.002, Parallelism: 4, Seed: 42},
		MaxIterations: 25,
		Policy:        optiflow.OptimisticRecovery(),
		Injector:      optiflow.FailWorker(6, 1), // kill worker 1 in iteration 7
		Probe: func(job *optiflow.ALSModel, s optiflow.Sample) {
			rmse := s.Stats.Extra["rmse"]
			bar := int(rmse * 40)
			if bar > 60 {
				bar = 60
			}
			line := fmt.Sprintf("iteration %2d  train RMSE %.4f %s", s.Tick+1, rmse, strings.Repeat("▇", bar))
			if s.Failed() {
				line += fmt.Sprintf("\n             ⚡ workers %v failed — RMSE right after compensation: %.4f",
					s.FailedWorkers, job.RMSE())
			}
			fmt.Println(line)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntraining finished after %d iterations (%d failures), final RMSE %.4f (noise floor ~0.02)\n",
		res.Ticks, res.Failures, res.Model.LastRMSE())
	fmt.Printf("sample predictions vs observed:\n")
	for u := uint64(0); u < 3; u++ {
		fmt.Printf("  user %d, item %d: predicted %.3f\n", u, u+1, res.Model.Predict(u, u+1))
	}
}
