// The Figure 4/5 scenario of the paper: PageRank on the directed demo
// graph with a failure in iteration 5. The run prints the L1 norm of
// the rank delta per iteration — downward trend, spike at the
// iteration after the failure — and verifies that the fix-ranks
// compensation (uniform redistribution of the lost probability mass)
// still converges to the true ranks.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"optiflow"
)

func main() {
	g, _ := optiflow.DemoGraphDirected()

	res, err := optiflow.PageRank(g, optiflow.PROptions{
		Parallelism:   4,
		MaxIterations: 40,
		Policy:        optiflow.OptimisticRecovery(),
		Compensation:  optiflow.FixRanks,
		Injector:      optiflow.FailWorker(4, 1), // iteration 5 (0-based superstep 4)
		OnSample: func(s optiflow.Sample) {
			bar := int(math.Min(50, s.Stats.Extra["l1"]*150))
			line := fmt.Sprintf("iteration %2d  L1=%.4f %s", s.Tick+1, s.Stats.Extra["l1"],
				stringRepeat("▇", bar))
			if s.Failed() {
				line += "  ⚡ failure: lost mass redistributed over the failed partitions"
			}
			fmt.Println(line)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	truth := optiflow.TruePageRank(g, 0.85)
	maxErr := 0.0
	sum := 0.0
	for v, r := range res.Ranks {
		maxErr = math.Max(maxErr, math.Abs(r-truth[v]))
		sum += r
	}
	fmt.Printf("\nranks sum to %.9f (consistency invariant), max error vs power iteration %.2e\n", sum, maxErr)

	type vr struct {
		v optiflow.VertexID
		r float64
	}
	top := make([]vr, 0, len(res.Ranks))
	for v, r := range res.Ranks {
		top = append(top, vr{v, r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("top 5 vertices by rank:")
	for _, t := range top[:5] {
		fmt.Printf("  vertex %2d  rank %.5f\n", t.v, t.r)
	}
}

func stringRepeat(s string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += s
	}
	return out
}
