// Extension example: k-means clustering as a bulk-iteration dataflow
// with optimistic recovery. A worker crash destroys part of the
// centroid table mid-run; the compensation function re-seeds the lost
// centroids with deterministic data points, and Lloyd's iteration
// converges to the same clustering as the failure-free run — no
// checkpoint taken.
package main

import (
	"fmt"
	"log"

	"optiflow"
)

func main() {
	// 1200 points around 6 well-separated blobs in 4 dimensions.
	data := optiflow.SyntheticBlobs(1200, 6, 4, 2.5, 77)

	run := func(name string, injector optiflow.Injector) *optiflow.KMeansResult {
		res, err := optiflow.KMeansCluster(data, optiflow.KMeansOptions{
			Config:   optiflow.KMeansConfig{K: 6, Parallelism: 4, Seed: 4},
			Injector: injector,
			Policy:   optiflow.OptimisticRecovery(),
			OnSample: func(s optiflow.Sample) {
				if name != "with failure" {
					return
				}
				line := fmt.Sprintf("iteration %2d: centroid shift %10.4f, cost %12.1f",
					s.Tick+1, s.Stats.Extra["shift"], s.Stats.Extra["cost"])
				if s.Failed() {
					line += "  ⚡ centroids lost — re-seeded by compensation"
				}
				fmt.Println(line)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	clean := run("failure-free", optiflow.NoFailures())
	fmt.Printf("failure-free: converged in %d iterations, cost %.1f\n\n", clean.Supersteps, clean.Model.Cost())

	failed := run("with failure", optiflow.FailWorker(2, 2))
	fmt.Printf("\nwith failure: converged in %d iterations (%d failures), cost %.1f\n",
		failed.Supersteps, failed.Failures, failed.Model.Cost())
	fmt.Printf("same clustering cost as failure-free: %v\n",
		failed.Model.Cost() < clean.Model.Cost()*1.05)
}
