// Extension example: single-source shortest paths as a vertex-centric
// delta iteration — the workload the paper cites when motivating delta
// iterations (§2.1) — protected by the same compensation-based
// optimistic recovery: lost vertices reset to their initial distances
// and the fixpoint still converges to the true shortest paths.
package main

import (
	"fmt"
	"log"
	"math"

	"optiflow"
)

func main() {
	// A 12x12 grid: BFS distances radiate from the corner, converging
	// at visibly different speeds across the graph.
	g := optiflow.GridGraph(12, 12)
	const source = 0

	dist, err := optiflow.ShortestPaths(g, source, optiflow.VertexProgramOptions{
		Parallelism: 4,
		Policy:      optiflow.OptimisticRecovery(),
		Injector:    optiflow.FailWorker(4, 2), // kill worker 2 in superstep 4
		OnSample: func(s optiflow.Sample) {
			line := fmt.Sprintf("superstep %2d: %5d messages", s.Tick+1, s.Stats.Messages)
			if s.Failed() {
				line += fmt.Sprintf("  ⚡ workers %v failed — distances compensated", s.FailedWorkers)
			}
			fmt.Println(line)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	truth := optiflow.TrueShortestPaths(g, source)
	wrong := 0
	for v, want := range truth {
		got := dist[v]
		if math.IsInf(want, 1) && math.IsInf(got, 1) {
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			wrong++
		}
	}
	fmt.Printf("\ndistances correct for %d/%d vertices despite the failure\n", len(truth)-wrong, len(truth))

	fmt.Println("\ndistance field from the source corner:")
	for r := 0; r < 12; r++ {
		for c := 0; c < 12; c++ {
			fmt.Printf("%3.0f", dist[optiflow.VertexID(r*12+c)])
		}
		fmt.Println()
	}
}
