// Writing your own recoverable algorithm: multi-source reachability as
// a custom vertex-centric program through the public API. The state is
// a boolean ("reached"), messages are boolean ORs — a monotone fold, so
// the program qualifies for both compensation-based optimistic recovery
// and the accumulator-replay confined recovery, each exercised below
// with a mid-run worker failure.
package main

import (
	"fmt"
	"log"

	"optiflow"
)

func reachabilityProgram(g *optiflow.Graph, sources map[optiflow.VertexID]bool) optiflow.VertexProgram[bool, bool] {
	return optiflow.VertexProgram[bool, bool]{
		Name: "reachability",
		Init: func(v optiflow.VertexID) (bool, []optiflow.VertexMessage[bool]) {
			if !sources[v] {
				return false, nil
			}
			var out []optiflow.VertexMessage[bool]
			for _, n := range g.OutNeighbors(v) {
				out = append(out, optiflow.VertexMessage[bool]{To: n, Msg: true})
			}
			return true, out
		},
		Compute: func(v optiflow.VertexID, reached bool, msgs []bool, send func(optiflow.VertexID, bool)) (bool, bool) {
			if reached {
				return true, false // already reached: nothing changes
			}
			for _, m := range msgs {
				if m {
					for _, n := range g.OutNeighbors(v) {
						send(n, true)
					}
					return true, true
				}
			}
			return false, false
		},
		Combine: func(a, b bool) bool { return a || b },
		// The paper's recovery hooks: reset lost vertices to "source or
		// not", and have survivors re-announce their reachability.
		Compensate: func(v optiflow.VertexID) bool { return sources[v] },
		Reactivate: func(v optiflow.VertexID, reached bool, send func(optiflow.VertexID, bool)) {
			if !reached {
				return
			}
			for _, n := range g.OutNeighbors(v) {
				send(n, true)
			}
		},
	}
}

func main() {
	// A directed power-law graph. In the follower direction, late
	// (high-ID) vertices point toward the old core, so reachability from
	// two late vertices sweeps most of the graph in a few supersteps.
	g := optiflow.TwitterGraph(3000, 11)
	sources := map[optiflow.VertexID]bool{2999: true, 2500: true}

	count := func(states map[optiflow.VertexID]bool) int {
		n := 0
		for _, reached := range states {
			if reached {
				n++
			}
		}
		return n
	}

	// Ground truth without failures.
	truth, err := optiflow.RunVertexProgram(reachabilityProgram(g, sources), g, optiflow.VertexProgramOptions{
		Parallelism: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free: %d of %d vertices reachable from %d sources\n",
		count(truth.States), g.NumVertices(), len(sources))

	for _, tc := range []struct {
		name string
		opts optiflow.VertexProgramOptions
	}{
		{"optimistic (compensation)", optiflow.VertexProgramOptions{
			Parallelism: 4,
			Policy:      optiflow.OptimisticRecovery(),
			Injector:    optiflow.FailWorker(1, 1),
		}},
		{"confined (accumulator replay)", optiflow.VertexProgramOptions{
			Parallelism:    4,
			Policy:         optiflow.ConfinedRecovery(),
			Injector:       optiflow.FailWorker(1, 1),
			AccumulatorLog: true,
		}},
	} {
		res, err := optiflow.RunVertexProgram(reachabilityProgram(g, sources), g, tc.opts)
		if err != nil {
			log.Fatal(err)
		}
		same := count(res.States) == count(truth.States)
		for v, want := range truth.States {
			if res.States[v] != want {
				same = false
				break
			}
		}
		fmt.Printf("%-30s: %d reachable after %d supersteps (%d failures), identical to failure-free: %v\n",
			tc.name, count(res.States), res.Supersteps, res.Failures, same)
	}
}
