module optiflow

go 1.24
