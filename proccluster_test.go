package optiflow_test

import (
	"os"
	"testing"

	"optiflow"
)

// TestMain routes spawned worker-daemon children into worker mode, the
// same way a binary using NewProcCluster must call WorkerProcessMain
// first thing in main.
func TestMain(m *testing.M) {
	optiflow.WorkerProcessMain()
	os.Exit(m.Run())
}

// TestNewProcCluster boots real worker processes through the facade
// and checks the backend answers basic membership queries like the
// in-process simulation would.
func TestNewProcCluster(t *testing.T) {
	cl, stop, err := optiflow.NewProcCluster(2, 4)
	if err != nil {
		t.Fatalf("NewProcCluster: %v", err)
	}
	defer stop()

	if got := cl.NumPartitions(); got != 4 {
		t.Fatalf("NumPartitions = %d, want 4", got)
	}
	if got := len(cl.Workers()); got != 2 {
		t.Fatalf("Workers = %d, want 2", got)
	}
	owned := 0
	for p := 0; p < cl.NumPartitions(); p++ {
		w := cl.Owner(p)
		if !cl.IsAlive(w) {
			t.Fatalf("Owner(%d) = %d is not alive", p, w)
		}
		owned++
	}
	if owned != 4 {
		t.Fatalf("owned partitions = %d, want 4", owned)
	}
}
